//! The admission-controlled service plane.
//!
//! Time is a virtual **tick**: each tick the plane may execute up to a
//! configured budget of modeled cycles (the gas the device-under-model
//! could burn in one scheduling slot). Every submitted frame is
//! decoded, cost-quoted from the active target's [`CostTable`], and
//! then either admitted to the bounded queue or answered immediately
//! with a typed rejection — backpressure ([`Status::Busy`]), quota
//! ([`Status::QuotaExceeded`]), shedding ([`Status::Shed`]), overload
//! ([`Status::Overloaded`]), expiry ([`Status::Expired`]) or a decode
//! rejection. Nothing is ever dropped silently: the accounting
//! identity `submitted = typed outcomes + still queued` holds at every
//! tick boundary and is what the CI overload smoke asserts.
//!
//! Under sustained overload the plane degrades gracefully along a
//! deterministic ladder driven by the backlog-to-capacity ratio, with
//! hysteresis so the level does not flap:
//!
//! | level | enters at backlog ≥ | behaviour                                    |
//! |-------|---------------------|----------------------------------------------|
//! | 0     | —                   | normal admission                             |
//! | 1     | 1× tick budget      | shed [`Priority::Low`]                       |
//! | 2     | 2× tick budget      | also shed [`Priority::Normal`], stop warming |
//! | 3     | 3× tick budget      | reject everything, with quotes, so clients back off |
//!
//! Execution drains the queue in admission order through the threaded
//! batch scheduler ([`protocols::batch`]) — worker counts change
//! wall-clock speed, never results — and charges each request exactly
//! its quoted cycles and energy (the bit-identical accounting contract
//! of [`crate::cost`]).

use crate::cost::{CostTable, OpCost};
use crate::frame::{decode_request, FrameError, OpRequest, Priority, Request, Response, Status};
use crate::quota::TokenBucket;
use koblitz::cache;
use koblitz::curve::Affine;
use koblitz::mul::KP_WINDOW;
use m0plus::TargetSpec;
use protocols::batch::{ecdh_batch, sign_batch, verify_batch, VerifyJob};
use protocols::wire::{encode_signature, WindowedReplayGuard, WireError};
use protocols::{ecies, Keypair, SigningKey};
use std::collections::VecDeque;

/// Service-plane policy: capacity, quotas, bounds and degradation
/// behaviour. Validated by [`ServicePlane::new`].
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// The cost-model target requests are priced under.
    pub target: &'static TargetSpec,
    /// Modeled cycles the plane may execute per tick (the gas budget).
    pub capacity_cycles_per_tick: u64,
    /// Bounded admission-queue length; a full queue answers
    /// [`Status::Busy`].
    pub queue_capacity: usize,
    /// Per-client token-bucket burst capacity, in modeled cycles.
    pub quota_capacity_cycles: u64,
    /// Per-client refill rate, in modeled cycles per tick.
    pub quota_refill_cycles_per_tick: u64,
    /// Bounded client table; the least recently seen client is evicted
    /// when a new one arrives beyond this.
    pub max_clients: usize,
    /// Per-client replay-window capacity (see
    /// [`WindowedReplayGuard`]).
    pub replay_window: usize,
    /// Deadline granted to requests that do not carry one, in ticks.
    pub default_deadline_ticks: u64,
    /// Prefetch the wTNAF table of a request's kP operand into the
    /// process-wide cache at admission (disabled at degradation
    /// level ≥ 2).
    pub warm_tables: bool,
    /// Worker threads for the batch drain; 0 sizes from the host.
    /// Results are bit-identical for any value.
    pub workers: usize,
    /// Seed for the plane's own signing and ECDH keys (and the
    /// deterministic ECIES ephemerals).
    pub key_seed: u64,
}

impl PlaneConfig {
    /// A validated default policy for `target`: tick budget twice the
    /// most expensive quote (≈ 2 worst-case ops per tick), client
    /// bursts of four, refill of one worst-case op per tick.
    pub fn for_target(target: &'static TargetSpec) -> PlaneConfig {
        let max_quote = CostTable::shared(target).max_quote().cycles;
        PlaneConfig {
            target,
            capacity_cycles_per_tick: 2 * max_quote,
            queue_capacity: 32,
            quota_capacity_cycles: 4 * max_quote,
            quota_refill_cycles_per_tick: max_quote,
            max_clients: 64,
            replay_window: 64,
            default_deadline_ticks: 8,
            warm_tables: true,
            workers: 0,
            key_seed: 0x5EC7_0233,
        }
    }
}

/// A rejected [`PlaneConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The tick budget cannot cover even one of the most expensive
    /// operation — admitted work could never execute.
    CapacityBelowMaxQuote {
        /// Configured cycles per tick.
        capacity: u64,
        /// The most expensive operation's quote.
        max_quote: u64,
    },
    /// The admission queue must hold at least one request.
    ZeroQueueCapacity,
    /// The client table must hold at least one client.
    ZeroClients,
    /// The replay window must remember at least one sequence number.
    ZeroReplayWindow,
    /// The default deadline must grant at least one tick.
    ZeroDeadline,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CapacityBelowMaxQuote {
                capacity,
                max_quote,
            } => write!(
                f,
                "tick budget {capacity} cycles cannot cover the most expensive quote \
                 ({max_quote} cycles): admitted work would never execute"
            ),
            ConfigError::ZeroQueueCapacity => f.write_str("queue capacity must be at least 1"),
            ConfigError::ZeroClients => f.write_str("client table must hold at least 1 client"),
            ConfigError::ZeroReplayWindow => f.write_str("replay window must be at least 1"),
            ConfigError::ZeroDeadline => f.write_str("default deadline must be at least 1 tick"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Cumulative plane counters. Every submitted frame lands in exactly
/// one terminal counter (or is still queued): see
/// [`Counters::accounted`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Frames handed to [`ServicePlane::submit`].
    pub submitted: u64,
    /// Frames rejected by the decoder (malformed, oversize, bad
    /// operands).
    pub decode_errors: u64,
    /// Requests whose deadline had already passed at submission.
    pub expired_on_arrival: u64,
    /// Requests refused by the per-client replay window.
    pub replays: u64,
    /// Requests shed by the degradation ladder (levels 1–2).
    pub shed: u64,
    /// Requests refused by the client's token bucket.
    pub quota_rejected: u64,
    /// Requests refused because the admission queue was full.
    pub busy_rejected: u64,
    /// Requests refused at the full-reject degradation level.
    pub overload_rejected: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Admitted requests that executed to a [`Status::Done`].
    pub completed: u64,
    /// Admitted requests that expired while queued.
    pub timeouts: u64,
    /// Clients evicted from the bounded client table.
    pub client_evictions: u64,
    /// wTNAF tables prefetched at admission.
    pub warms: u64,
    /// Modeled cycles charged for completed work (= sum of quotes).
    pub executed_cycles: u64,
    /// Modeled energy charged for completed work, picojoules.
    pub executed_energy_pj: f64,
    /// Degradation-level transitions.
    pub level_changes: u64,
    /// Highest degradation level reached.
    pub max_level: u64,
}

impl Counters {
    /// Frames that received a terminal typed response.
    pub fn terminal(&self) -> u64 {
        self.decode_errors
            + self.expired_on_arrival
            + self.replays
            + self.shed
            + self.quota_rejected
            + self.busy_rejected
            + self.overload_rejected
            + self.completed
            + self.timeouts
    }

    /// The accounting identity: every submitted frame is either
    /// terminally answered or still queued. The overload smoke gates
    /// on this.
    pub fn accounted(&self, pending: u64) -> bool {
        self.submitted == self.terminal() + pending
            && self.admitted == self.completed + self.timeouts + pending
    }
}

/// One admitted request waiting in (or drained from) the queue.
#[derive(Debug, Clone)]
struct Admitted {
    client: u32,
    seq: u64,
    deadline: u64,
    quote: OpCost,
    work: OpRequest,
}

#[derive(Debug)]
struct ClientEntry {
    id: u32,
    bucket: TokenBucket,
    replay: WindowedReplayGuard,
    last_seen: u64,
}

/// The gas-metered service plane. See the module docs for the
/// admission pipeline and the degradation ladder.
#[derive(Debug)]
pub struct ServicePlane {
    cfg: PlaneConfig,
    costs: &'static CostTable,
    signer: SigningKey,
    ecdh_key: Keypair,
    tick: u64,
    lru_clock: u64,
    queue: VecDeque<Admitted>,
    backlog_cycles: u64,
    clients: Vec<ClientEntry>,
    level: u8,
    counters: Counters,
}

impl ServicePlane {
    /// Builds a plane, pricing the cost table for the configured
    /// target and validating the policy.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for policies that could never make progress.
    pub fn new(cfg: PlaneConfig) -> Result<ServicePlane, ConfigError> {
        let costs = CostTable::shared(cfg.target);
        let max_quote = costs.max_quote().cycles;
        if cfg.capacity_cycles_per_tick < max_quote {
            return Err(ConfigError::CapacityBelowMaxQuote {
                capacity: cfg.capacity_cycles_per_tick,
                max_quote,
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if cfg.max_clients == 0 {
            return Err(ConfigError::ZeroClients);
        }
        if cfg.replay_window == 0 {
            return Err(ConfigError::ZeroReplayWindow);
        }
        if cfg.default_deadline_ticks == 0 {
            return Err(ConfigError::ZeroDeadline);
        }
        let signer = SigningKey::generate(&seed_material(cfg.key_seed, b"signer"));
        let ecdh_key = Keypair::generate(&seed_material(cfg.key_seed, b"ecdh"));
        Ok(ServicePlane {
            cfg,
            costs,
            signer,
            ecdh_key,
            tick: 0,
            lru_clock: 0,
            queue: VecDeque::new(),
            backlog_cycles: 0,
            clients: Vec::new(),
            level: 0,
            counters: Counters::default(),
        })
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// The active price list.
    pub fn costs(&self) -> &'static CostTable {
        self.costs
    }

    /// The pre-execution quote for one operation.
    pub fn quote(&self, op: crate::frame::Op) -> OpCost {
        self.costs.quote(op)
    }

    /// The plane's signature-verification key (what [`OpRequest::Sign`]
    /// responses verify under).
    pub fn signer_public(&self) -> &Affine {
        self.signer.public()
    }

    /// The plane's ECDH public key (what [`OpRequest::Ecdh`] responses
    /// agree against).
    pub fn ecdh_public(&self) -> &Affine {
        self.ecdh_key.public()
    }

    /// Requests admitted but not yet answered.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Quoted cycles of everything still queued.
    pub fn backlog_cycles(&self) -> u64 {
        self.backlog_cycles
    }

    /// The current degradation-ladder level (0–3).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Cumulative counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Whether the accounting identity holds right now.
    pub fn accounted(&self) -> bool {
        self.counters.accounted(self.queue.len() as u64)
    }

    /// Submits one wire frame. An immediate typed response means the
    /// request was rejected (or expired on arrival); `None` means it
    /// was admitted and will be answered by a later [`ServicePlane::tick`].
    pub fn submit(&mut self, bytes: &[u8]) -> Option<Response> {
        self.counters.submitted += 1;
        let now = self.tick;
        let req = match decode_request(bytes) {
            Ok(r) => r,
            Err(fail) => {
                self.counters.decode_errors += 1;
                return Some(Response {
                    client: fail.client,
                    seq: fail.seq,
                    status: Status::Rejected(fail.error),
                });
            }
        };
        let Request {
            client,
            seq,
            priority,
            ..
        } = req;
        let respond = |status| {
            Some(Response {
                client,
                seq,
                status,
            })
        };
        let deadline = if req.deadline == 0 {
            now + self.cfg.default_deadline_ticks
        } else {
            req.deadline
        };
        if deadline <= now {
            self.counters.expired_on_arrival += 1;
            return respond(Status::Expired { deadline, now });
        }
        let quote = self.costs.quote(req.op.op());
        let ix = self.client_index(client, now);
        self.lru_clock += 1;
        self.clients[ix].last_seen = self.lru_clock;
        // Replay *check* only — the sequence number is committed at
        // admission, so a request bounced by backpressure or quota can
        // be retried under the same number.
        if let Err(r) = self.clients[ix].replay.check(seq) {
            self.counters.replays += 1;
            return respond(Status::Rejected(FrameError::Replayed {
                seq: r.seq,
                floor: r.floor,
            }));
        }
        // Degradation ladder.
        let retry_after = self.backlog_cycles / self.cfg.capacity_cycles_per_tick + 1;
        if self.level >= 3 {
            self.counters.overload_rejected += 1;
            return respond(Status::Overloaded {
                quote_cycles: quote.cycles,
                retry_after,
            });
        }
        if (self.level >= 1 && priority == Priority::Low)
            || (self.level >= 2 && priority <= Priority::Normal)
        {
            self.counters.shed += 1;
            return respond(Status::Shed { level: self.level });
        }
        // Backpressure before quota: a capacity bounce must not drain
        // the client's bucket.
        if self.queue.len() >= self.cfg.queue_capacity {
            self.counters.busy_rejected += 1;
            return respond(Status::Busy { retry_after });
        }
        // Quota, denominated in the quoted cycles.
        self.clients[ix].bucket.advance(now);
        if let Err(retry_after) = self.clients[ix].bucket.try_charge(quote.cycles) {
            self.counters.quota_rejected += 1;
            return respond(Status::QuotaExceeded {
                quote_cycles: quote.cycles,
                retry_after,
            });
        }
        // Admission: commit the sequence number, optionally warm the
        // wTNAF table for the request's kP operand.
        self.clients[ix]
            .replay
            .accept(seq)
            .expect("sequence number was checked fresh above");
        if self.cfg.warm_tables && self.level < 2 {
            if let Some(p) = req.op.warm_point() {
                let _ = cache::table_for(p, KP_WINDOW);
                self.counters.warms += 1;
            }
        }
        self.backlog_cycles += quote.cycles;
        self.counters.admitted += 1;
        self.queue.push_back(Admitted {
            client,
            seq,
            deadline,
            quote,
            work: req.op,
        });
        None
    }

    /// Advances one tick: expires overdue queued requests (wherever
    /// they sit), drains the queue in admission order up to the tick's
    /// cycle budget through the batch scheduler, advances the clock,
    /// and reassesses the degradation level. Returns every response
    /// produced this tick.
    pub fn tick(&mut self) -> Vec<Response> {
        let now = self.tick;
        let mut out = Vec::new();
        // Deadline expiry *during* queueing: sweep the whole queue so a
        // request buried behind a long backlog still gets its typed
        // expiry the tick its deadline passes.
        let mut retained = VecDeque::with_capacity(self.queue.len());
        for a in std::mem::take(&mut self.queue) {
            if a.deadline <= now {
                self.backlog_cycles -= a.quote.cycles;
                self.counters.timeouts += 1;
                out.push(Response {
                    client: a.client,
                    seq: a.seq,
                    status: Status::Expired {
                        deadline: a.deadline,
                        now,
                    },
                });
            } else {
                retained.push_back(a);
            }
        }
        self.queue = retained;
        // Drain up to this tick's gas budget, FIFO.
        let mut budget = self.cfg.capacity_cycles_per_tick;
        let mut picked = Vec::new();
        while let Some(head) = self.queue.front() {
            if head.quote.cycles > budget {
                break;
            }
            let a = self.queue.pop_front().expect("front exists");
            budget -= a.quote.cycles;
            self.backlog_cycles -= a.quote.cycles;
            picked.push(a);
        }
        out.extend(self.execute(picked));
        self.tick += 1;
        self.reassess();
        out
    }

    /// Executes one tick's drained requests, batched per operation
    /// through [`protocols::batch`]. Responses come back in drain
    /// order; each is charged exactly its quote.
    fn execute(&mut self, picked: Vec<Admitted>) -> Vec<Response> {
        let workers = if self.cfg.workers == 0 {
            protocols::batch::BatchConfig::default().effective_workers()
        } else {
            self.cfg.workers
        };
        let mut statuses: Vec<Option<Status>> = vec![None; picked.len()];
        let mut sign_ix = Vec::new();
        let mut sign_msgs: Vec<&[u8]> = Vec::new();
        let mut ver_ix = Vec::new();
        let mut ver_jobs: Vec<VerifyJob<'_>> = Vec::new();
        let mut dh_ix = Vec::new();
        let mut dh_peers: Vec<Affine> = Vec::new();
        for (i, a) in picked.iter().enumerate() {
            match &a.work {
                OpRequest::Sign { msg } => {
                    sign_ix.push(i);
                    sign_msgs.push(msg);
                }
                OpRequest::Verify { public, sig, msg } => {
                    ver_ix.push(i);
                    ver_jobs.push(VerifyJob { public, msg, sig });
                }
                OpRequest::Ecdh { peer } => {
                    dh_ix.push(i);
                    dh_peers.push(*peer);
                }
                OpRequest::Ecies { recipient, msg } => {
                    // Inline (no batch path exists); the ephemeral is
                    // derived deterministically from the plane seed and
                    // the request identity.
                    let mut seed = seed_material(self.cfg.key_seed, b"ecies");
                    seed.extend_from_slice(&a.client.to_be_bytes());
                    seed.extend_from_slice(&a.seq.to_be_bytes());
                    statuses[i] = Some(match ecies::encrypt(recipient, msg, &seed) {
                        Ok(ct) => {
                            let mut body = ct.ephemeral.to_vec();
                            body.extend_from_slice(&ct.sealed);
                            Status::Done(body)
                        }
                        // Unreachable: operands are validated at decode.
                        Err(_) => Status::Rejected(FrameError::Wire(WireError::WrongOrder)),
                    });
                }
            }
        }
        let sigs = sign_batch(&self.signer, &sign_msgs, workers);
        for (&i, sig) in sign_ix.iter().zip(sigs) {
            statuses[i] = Some(Status::Done(encode_signature(&sig).to_vec()));
        }
        let verdicts = verify_batch(&ver_jobs, workers);
        for (&i, verdict) in ver_ix.iter().zip(verdicts) {
            statuses[i] = Some(Status::Done(vec![u8::from(verdict.is_ok())]));
        }
        drop(ver_jobs);
        let secrets = ecdh_batch(&self.ecdh_key, &dh_peers, workers);
        for (&i, secret) in dh_ix.iter().zip(secrets) {
            statuses[i] = Some(match secret {
                Ok(s) => Status::Done(s.to_vec()),
                // Unreachable: peers are validated at decode.
                Err(_) => Status::Rejected(FrameError::Wire(WireError::WrongOrder)),
            });
        }
        picked
            .into_iter()
            .zip(statuses)
            .map(|(a, status)| {
                // The accounting contract: charge exactly the quote.
                self.counters.completed += 1;
                self.counters.executed_cycles += a.quote.cycles;
                self.counters.executed_energy_pj += a.quote.energy_pj;
                Response {
                    client: a.client,
                    seq: a.seq,
                    status: status.expect("every drained op produced a status"),
                }
            })
            .collect()
    }

    /// Recomputes the degradation level from the backlog ratio, with
    /// half-a-tick of hysteresis so the ladder does not flap at a
    /// threshold.
    fn reassess(&mut self) {
        let cap = self.cfg.capacity_cycles_per_tick;
        let b = self.backlog_cycles;
        let mut level = self.level;
        while level < 3 && b >= cap.saturating_mul(level as u64 + 1) {
            level += 1;
        }
        while level > 0 && b + cap / 2 < cap.saturating_mul(level as u64) {
            level -= 1;
        }
        if level != self.level {
            self.level = level;
            self.counters.level_changes += 1;
            self.counters.max_level = self.counters.max_level.max(level as u64);
        }
    }

    /// Finds (or creates, evicting the least recently seen client if
    /// the bounded table is full) the state entry for `id`.
    fn client_index(&mut self, id: u32, now: u64) -> usize {
        if let Some(ix) = self.clients.iter().position(|c| c.id == id) {
            return ix;
        }
        if self.clients.len() >= self.cfg.max_clients {
            let victim = self
                .clients
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_seen)
                .map(|(i, _)| i)
                .expect("table is non-empty");
            self.clients.swap_remove(victim);
            self.counters.client_evictions += 1;
        }
        self.clients.push(ClientEntry {
            id,
            bucket: TokenBucket::new(
                self.cfg.quota_capacity_cycles,
                self.cfg.quota_refill_cycles_per_tick,
                now,
            ),
            replay: WindowedReplayGuard::new(self.cfg.replay_window),
            last_seen: 0,
        });
        self.clients.len() - 1
    }
}

fn seed_material(key_seed: u64, label: &[u8]) -> Vec<u8> {
    let mut m = b"service-plane:".to_vec();
    m.extend_from_slice(&key_seed.to_be_bytes());
    m.push(b':');
    m.extend_from_slice(label);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_request;
    use protocols::ecdsa::verify;
    use protocols::wire::decode_signature_slice;

    fn small_plane() -> ServicePlane {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.queue_capacity = 4;
        cfg.max_clients = 4;
        cfg.workers = 1;
        ServicePlane::new(cfg).expect("valid config")
    }

    fn sign_frame(client: u32, seq: u64, priority: Priority, deadline: u64) -> Vec<u8> {
        encode_request(&Request {
            client,
            seq,
            priority,
            deadline,
            op: OpRequest::Sign {
                msg: format!("msg {client}/{seq}").into_bytes(),
            },
        })
    }

    #[test]
    fn sign_request_executes_and_verifies() {
        let mut plane = small_plane();
        assert_eq!(plane.submit(&sign_frame(1, 1, Priority::Normal, 0)), None);
        let out = plane.tick();
        assert_eq!(out.len(), 1);
        let resp = &out[0];
        assert_eq!((resp.client, resp.seq), (1, 1));
        let Status::Done(bytes) = &resp.status else {
            panic!("expected Done, got {:?}", resp.status);
        };
        let sig = decode_signature_slice(bytes).expect("60-byte signature");
        assert_eq!(
            verify(plane.signer_public(), b"msg 1/1", &sig),
            Ok(()),
            "response must verify under the plane's key"
        );
        assert!(plane.accounted());
    }

    #[test]
    fn full_queue_answers_busy_with_retry_hint() {
        let mut plane = small_plane();
        for seq in 1..=4 {
            assert_eq!(plane.submit(&sign_frame(1, seq, Priority::High, 20)), None);
        }
        let resp = plane
            .submit(&sign_frame(2, 1, Priority::High, 20))
            .expect("queue is full");
        let Status::Busy { retry_after } = resp.status else {
            panic!("expected Busy, got {:?}", resp.status);
        };
        assert!(retry_after >= 1);
        assert_eq!(plane.counters().busy_rejected, 1);
        assert!(plane.accounted());
    }

    #[test]
    fn quota_denies_with_refill_schedule_then_recovers() {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        let kg = CostTable::shared(cfg.target).kg.cycles;
        cfg.quota_capacity_cycles = kg; // one sign per burst
        cfg.quota_refill_cycles_per_tick = kg.div_ceil(2); // back in 2 ticks
        cfg.workers = 1;
        let mut plane = ServicePlane::new(cfg).expect("valid config");
        assert_eq!(plane.submit(&sign_frame(1, 1, Priority::Normal, 30)), None);
        let resp = plane
            .submit(&sign_frame(1, 2, Priority::Normal, 30))
            .expect("bucket is empty");
        let Status::QuotaExceeded {
            quote_cycles,
            retry_after,
        } = resp.status
        else {
            panic!("expected QuotaExceeded, got {:?}", resp.status);
        };
        assert_eq!(quote_cycles, kg);
        assert_eq!(retry_after, 2);
        // Another client is unaffected (quotas are per client).
        assert_eq!(plane.submit(&sign_frame(2, 1, Priority::Normal, 30)), None);
        // After the refill schedule, the same client may retry — with
        // the same sequence number, since rejection did not burn it.
        plane.tick();
        plane.tick();
        assert_eq!(plane.submit(&sign_frame(1, 2, Priority::Normal, 30)), None);
        assert_eq!(plane.counters().quota_rejected, 1);
        assert!(plane.accounted());
    }

    #[test]
    fn deadlines_expire_on_arrival_and_in_queue() {
        let mut plane = small_plane();
        plane.tick(); // now = 1
                      // Deadline 1 ≤ now: expired on arrival.
        let resp = plane
            .submit(&sign_frame(1, 1, Priority::Normal, 1))
            .expect("already expired");
        assert!(matches!(resp.status, Status::Expired { deadline: 1, .. }));
        // Deadline 2: admitted now but expires while queued behind
        // three requests at a one-op tick budget... queue drains 2/tick,
        // so make it expire by padding the queue.
        assert_eq!(plane.submit(&sign_frame(1, 2, Priority::Normal, 2)), None);
        assert_eq!(plane.submit(&sign_frame(1, 3, Priority::Normal, 2)), None);
        assert_eq!(plane.submit(&sign_frame(1, 4, Priority::Normal, 2)), None);
        let out = plane.tick(); // now 1 → deadline-2 work must run or expire at tick 2
        let expired: Vec<_> = out
            .iter()
            .filter(|r| matches!(r.status, Status::Expired { .. }))
            .collect();
        let done = out
            .iter()
            .filter(|r| matches!(r.status, Status::Done(_)))
            .count();
        // Tick budget covers 2 kg-ops... actually 2×max_quote ≥ 3 kg
        // quotes is possible; either way every response is typed and
        // the books balance.
        assert_eq!(out.len(), done + expired.len());
        let out2 = plane.tick();
        assert!(plane.pending() == 0 || !out2.is_empty());
        for _ in 0..4 {
            plane.tick();
        }
        assert_eq!(plane.pending(), 0);
        assert_eq!(
            plane.counters().completed + plane.counters().timeouts,
            plane.counters().admitted
        );
        assert!(plane.counters().expired_on_arrival == 1);
        assert!(plane.accounted());
    }

    #[test]
    fn ladder_sheds_low_then_normal_then_everything_and_recovers() {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.queue_capacity = 64;
        cfg.quota_capacity_cycles = u64::MAX / 4; // quota out of the way
        cfg.quota_refill_cycles_per_tick = u64::MAX / 4;
        cfg.workers = 1;
        let capacity = cfg.capacity_cycles_per_tick;
        let kg = CostTable::shared(cfg.target).kg.cycles;
        let mut plane = ServicePlane::new(cfg).expect("valid config");
        // Flood with High-priority signs until the backlog crosses 3×
        // the tick budget (level 3). Level changes land at tick
        // boundaries, so alternate submit bursts with ticks.
        let per_level = (3 * capacity / kg) as u64 + 2;
        let mut seq = 0;
        while plane.level() < 3 && seq < 4 * per_level {
            seq += 1;
            let _ = plane.submit(&sign_frame(1, seq, Priority::High, u64::MAX));
            if seq % 4 == 0 {
                // A zero-drain boundary: reassess without executing.
                plane.reassess();
            }
        }
        assert_eq!(plane.level(), 3, "flood must reach the reject level");
        assert!(plane.counters().max_level >= 3);
        // Level 3: everything is rejected with a quote.
        let resp = plane
            .submit(&sign_frame(2, 1, Priority::High, u64::MAX))
            .expect("rejected at level 3");
        let Status::Overloaded { quote_cycles, .. } = resp.status else {
            panic!("expected Overloaded, got {:?}", resp.status);
        };
        assert_eq!(quote_cycles, kg);
        // Drain until the ladder steps back down, then check the
        // intermediate levels shed by priority.
        while plane.level() > 2 {
            plane.tick();
        }
        let resp = plane
            .submit(&sign_frame(2, 2, Priority::Normal, u64::MAX))
            .expect("normal is shed at level 2");
        assert!(matches!(resp.status, Status::Shed { level: 2 }));
        while plane.level() > 1 {
            plane.tick();
        }
        let resp = plane
            .submit(&sign_frame(2, 3, Priority::Low, u64::MAX))
            .expect("low is shed at level 1");
        assert!(matches!(resp.status, Status::Shed { level: 1 }));
        assert_eq!(
            plane.submit(&sign_frame(2, 4, Priority::Normal, u64::MAX)),
            None
        );
        // Full drain recovers to normal admission.
        while plane.pending() > 0 {
            plane.tick();
        }
        assert_eq!(plane.level(), 0);
        assert!(plane.counters().level_changes >= 2);
        assert!(plane.accounted());
    }

    #[test]
    fn replay_is_refused_but_rejections_do_not_burn_sequence_numbers() {
        let mut plane = small_plane();
        assert_eq!(plane.submit(&sign_frame(1, 5, Priority::Normal, 20)), None);
        // Same sequence again: replayed.
        let resp = plane
            .submit(&sign_frame(1, 5, Priority::Normal, 20))
            .expect("replay");
        assert!(matches!(
            resp.status,
            Status::Rejected(FrameError::Replayed { seq: 5, .. })
        ));
        // Fill the queue; the bounced request keeps its number usable.
        for seq in 6..=8 {
            assert_eq!(
                plane.submit(&sign_frame(1, seq, Priority::Normal, 20)),
                None
            );
        }
        let resp = plane
            .submit(&sign_frame(1, 9, Priority::Normal, 20))
            .expect("queue full");
        assert!(matches!(resp.status, Status::Busy { .. }));
        while plane.pending() > 0 {
            plane.tick();
        }
        assert_eq!(
            plane.submit(&sign_frame(1, 9, Priority::Normal, 20)),
            None,
            "a Busy bounce must not consume the sequence number"
        );
        assert!(plane.accounted());
    }

    #[test]
    fn client_table_is_bounded_with_deterministic_eviction() {
        let mut plane = small_plane(); // max_clients = 4
        for client in 1..=4 {
            assert_eq!(
                plane.submit(&sign_frame(client, 1, Priority::Normal, 20)),
                None
            );
        }
        assert_eq!(plane.counters().client_evictions, 0);
        while plane.pending() > 0 {
            plane.tick();
        }
        // A fifth client evicts the least recently seen (client 1).
        let resp = plane.submit(&sign_frame(5, 1, Priority::Normal, 20));
        assert!(resp.is_none() || matches!(resp.unwrap().status, Status::Busy { .. }));
        assert_eq!(plane.counters().client_evictions, 1);
        assert!(plane.accounted());
    }

    #[test]
    fn invalid_config_is_refused() {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.capacity_cycles_per_tick = 1;
        assert!(matches!(
            ServicePlane::new(cfg.clone()),
            Err(ConfigError::CapacityBelowMaxQuote { capacity: 1, .. })
        ));
        cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.queue_capacity = 0;
        assert!(matches!(
            ServicePlane::new(cfg.clone()),
            Err(ConfigError::ZeroQueueCapacity)
        ));
        cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.default_deadline_ticks = 0;
        assert!(matches!(
            ServicePlane::new(cfg),
            Err(ConfigError::ZeroDeadline)
        ));
    }
}
