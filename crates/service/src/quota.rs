//! Per-client admission quotas: token buckets denominated in modeled
//! cycles.
//!
//! A client's budget refills at a configured rate of modeled cycles per
//! tick up to a burst capacity; every admitted request debits its
//! quoted cost. Because the denomination is the *quoted* cycle cost,
//! quota enforcement prices a verify at its real (kG + kP) weight
//! instead of counting requests — a flood of cheap signs and a trickle
//! of expensive ECIES calls draw down the same budget honestly.

/// A token bucket in modeled cycles with lazy, tick-driven refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    capacity: u64,
    refill_per_tick: u64,
    tokens: u64,
    last_tick: u64,
}

impl TokenBucket {
    /// A bucket born full at `now`.
    pub fn new(capacity: u64, refill_per_tick: u64, now: u64) -> TokenBucket {
        TokenBucket {
            capacity,
            refill_per_tick,
            tokens: capacity,
            last_tick: now,
        }
    }

    /// Applies the refill owed for the ticks elapsed since the last
    /// interaction (lazy: no per-tick scan over idle clients).
    pub fn advance(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.last_tick);
        self.last_tick = self.last_tick.max(now);
        let refill = (elapsed as u128 * self.refill_per_tick as u128).min(self.capacity as u128);
        self.tokens = (self.tokens + refill as u64).min(self.capacity);
    }

    /// Debits `cost` cycles, or reports how many ticks of refill the
    /// client must wait before this request could be admitted
    /// (`u64::MAX` when `cost` exceeds the burst capacity and would
    /// never fit).
    pub fn try_charge(&mut self, cost: u64) -> Result<(), u64> {
        if cost <= self.tokens {
            self.tokens -= cost;
            return Ok(());
        }
        if cost > self.capacity || self.refill_per_tick == 0 {
            return Err(u64::MAX);
        }
        let deficit = cost - self.tokens;
        Err(deficit.div_ceil(self.refill_per_tick))
    }

    /// Cycles currently available.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_empty_then_quotes_the_wait() {
        let mut b = TokenBucket::new(10, 2, 0);
        assert_eq!(b.try_charge(6), Ok(()));
        assert_eq!(b.tokens(), 4);
        // 4 tokens left, need 6 more for a 10-cycle request: 3 ticks.
        assert_eq!(b.try_charge(10), Err(3));
        // The failed attempt did not debit anything.
        assert_eq!(b.tokens(), 4);
    }

    #[test]
    fn refill_is_lazy_and_capped() {
        let mut b = TokenBucket::new(10, 2, 0);
        assert_eq!(b.try_charge(10), Ok(()));
        b.advance(3);
        assert_eq!(b.tokens(), 6);
        // A huge idle gap saturates at capacity (no overflow).
        b.advance(u64::MAX);
        assert_eq!(b.tokens(), 10);
    }

    #[test]
    fn oversized_requests_can_never_be_admitted() {
        let mut b = TokenBucket::new(10, 2, 0);
        assert_eq!(b.try_charge(11), Err(u64::MAX));
        let mut frozen = TokenBucket::new(10, 0, 0);
        assert_eq!(frozen.try_charge(5), Ok(()));
        assert_eq!(frozen.try_charge(6), Err(u64::MAX), "no refill, no hope");
    }

    #[test]
    fn advance_never_rewinds() {
        let mut b = TokenBucket::new(10, 1, 5);
        assert_eq!(b.try_charge(10), Ok(()));
        b.advance(2); // a stale clock must not mint tokens
        assert_eq!(b.tokens(), 0);
        b.advance(7);
        assert_eq!(b.tokens(), 2);
    }
}
