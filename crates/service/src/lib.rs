//! Gas-metered service plane over the modeled ECC protocol stack.
//!
//! The paper's device is a sensor-node coprocessor: a constrained
//! engine that must answer sign / verify / key-agreement requests
//! without ever being driven past its cycle-and-energy envelope. This
//! crate reproduces that discipline as a deterministic service plane:
//!
//! * [`frame`] — the framed wire protocol: every request arrives as
//!   bytes, is decoded totally (no panics on any input), and every
//!   outcome — success or any rejection — is a typed, encodable
//!   response.
//! * [`cost`] — the gas meter: per-operation cycle/energy quotes from
//!   the active [`m0plus::target::TargetSpec`] cost model, priced
//!   *before* execution and charged bit-identically after.
//! * [`quota`] — per-client token buckets denominated in modeled
//!   cycles.
//! * [`plane`] — admission control, the bounded queue with typed
//!   backpressure, deadlines, and the graceful-degradation ladder.
//!
//! The overload experiment that drives this plane lives in the `bench`
//! crate (`bench --bin service`); its CI gates are double-run
//! byte-identical counters and the accounting identity under 2×
//! overload with adversarial frames mixed in.

pub mod cost;
pub mod frame;
pub mod plane;
pub mod quota;

pub use cost::{CostTable, OpCost, COST_TIER};
pub use frame::{
    decode_request, decode_response, encode_request, encode_response, FrameError, Op, OpRequest,
    Priority, Request, Response, Status,
};
pub use plane::{ConfigError, Counters, PlaneConfig, ServicePlane};
pub use quota::TokenBucket;
