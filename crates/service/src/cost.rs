//! The gas meter: per-operation cycle/energy quotes derived from the
//! cost model *before* any execution.
//!
//! Every request is priced from the active target's canonical modeled
//! kernel runs — kG for signing, kP for key agreement, their sum for
//! verification and ECIES (the composition the paper's Table 3 energy
//! argument uses). The quote is the *accounting contract*: the plane
//! charges exactly the quoted cycles/energy when the request executes,
//! and the quote itself is reproducible bit-identically by re-running
//! the same canonical kernels under the same target (`tests/quotes.rs`
//! asserts this for the default and a non-default target).
//!
//! Canonical runs use one fixed scalar; real request scalars vary the
//! wTNAF digit pattern by a few percent around it. That residual is
//! the *quote-vs-actual* error the bench experiment samples and
//! exports — the price of quoting in O(1) instead of simulating every
//! request.

use crate::frame::Op;
use gf2m::modeled::Tier;
use koblitz::modeled::ModeledMul;
use koblitz::{generator, order, Int};
use m0plus::TargetSpec;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The implementation tier quotes are priced on: the paper's headline
/// assembly implementation.
pub const COST_TIER: Tier = Tier::Asm;

/// One operation's quoted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Modeled cycles on the active target.
    pub cycles: u64,
    /// Modeled energy on the active target, picojoules.
    pub energy_pj: f64,
}

impl OpCost {
    /// Component-wise sum (quote composition for two-kernel ops).
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }
}

/// The canonical quoting scalar: fixed, full-width, reduced mod n (the
/// same shape the bench workloads use). One scalar, so quotes are a
/// deterministic function of the target alone.
pub fn canonical_scalar() -> Int {
    let hex = format!("{:016x}", 0xC057u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    Int::from_hex(&hex.repeat(4))
        .expect("valid hex")
        .mod_positive(&order())
}

/// A target's price list: the two kernel costs every quote composes.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// The registry target this table prices for.
    pub target: &'static TargetSpec,
    /// Canonical fixed-point multiplication (kG, offline comb table).
    pub kg: OpCost,
    /// Canonical random-point multiplication (kP, online wTNAF).
    pub kp: OpCost,
}

impl CostTable {
    /// Prices the table by running the canonical modeled kernels under
    /// `target` (two full modeled point multiplications — milliseconds
    /// of host time; use [`CostTable::shared`] for the cached copy).
    pub fn measure(target: &'static TargetSpec) -> CostTable {
        let k = canonical_scalar();
        let mut mm = ModeledMul::with_target(COST_TIER, target);
        let kg = mm.kg(&k);
        let mut mm = ModeledMul::with_target(COST_TIER, target);
        let kp = mm.kp(&generator(), &k);
        CostTable {
            target,
            kg: OpCost {
                cycles: kg.report.cycles,
                energy_pj: kg.report.energy_pj,
            },
            kp: OpCost {
                cycles: kp.report.cycles,
                energy_pj: kp.report.energy_pj,
            },
        }
    }

    /// The process-wide cached table for `target`, priced on first use.
    pub fn shared(target: &'static TargetSpec) -> &'static CostTable {
        static TABLES: OnceLock<Mutex<HashMap<&'static str, &'static CostTable>>> = OnceLock::new();
        let mut map = TABLES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap();
        if let Some(t) = map.get(target.name()) {
            return t;
        }
        // Leaked once per registry target — bounded by the registry.
        let table: &'static CostTable = Box::leak(Box::new(CostTable::measure(target)));
        map.insert(target.name(), table);
        table
    }

    /// The pre-execution quote for one operation: kG for sign, kP for
    /// ecdh, kG + kP for verify and ecies.
    pub fn quote(&self, op: Op) -> OpCost {
        match op {
            Op::Sign => self.kg,
            Op::Ecdh => self.kp,
            Op::Verify | Op::Ecies => self.kg.plus(self.kp),
        }
    }

    /// The most expensive quote in the price list (capacity planning:
    /// a tick's budget must cover at least one of these).
    pub fn max_quote(&self) -> OpCost {
        self.quote(Op::Ecies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_compose_from_the_two_kernels() {
        let t = CostTable::shared(m0plus::target::default_target());
        assert_eq!(t.quote(Op::Sign), t.kg);
        assert_eq!(t.quote(Op::Ecdh), t.kp);
        assert_eq!(t.quote(Op::Verify).cycles, t.kg.cycles + t.kp.cycles);
        assert_eq!(t.quote(Op::Ecies), t.quote(Op::Verify));
        assert_eq!(t.max_quote().cycles, t.quote(Op::Ecies).cycles);
        // Sanity: the paper's headline ordering (kG cheaper than kP).
        assert!(t.kg.cycles < t.kp.cycles);
        assert!(t.kg.energy_pj < t.kp.energy_pj);
    }

    #[test]
    fn shared_table_is_cached() {
        let t1 = CostTable::shared(m0plus::target::default_target());
        let t2 = CostTable::shared(m0plus::target::default_target());
        assert!(std::ptr::eq(t1, t2));
    }

    #[test]
    fn canonical_scalar_is_full_width_and_reduced() {
        let k = canonical_scalar();
        assert!(!k.is_zero());
        assert!(k < order());
    }
}
