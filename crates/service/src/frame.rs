//! The service plane's wire format: framed requests and typed
//! responses.
//!
//! A request names a client, a sequence number, a priority, an absolute
//! deadline tick, and one of the four protocol operations (sign /
//! verify / ecdh / ecies) with its operands. Every response — success
//! or any of the admission-control rejections — is a typed frame that
//! round-trips through this encoding, so a client can always tell *why*
//! a request was refused and when to retry. Nothing is ever dropped
//! silently.
//!
//! Decoding is total: any byte string yields either a [`Request`] or a
//! [`FrameError`], never a panic (the negative-path suite in
//! `tests/robustness.rs` fuzzes this with a seeded mutation corpus).

use koblitz::curve::{Affine, DecompressError};
use protocols::wire::{
    decode_public_key_slice, decode_signature_slice, encode_public_key, encode_signature, WireError,
};
use protocols::Signature;

/// Wire-format version byte of both requests and responses.
pub const VERSION: u8 = 1;

/// Fixed request header: version ‖ op ‖ priority ‖ client u32 ‖
/// seq u64 ‖ deadline u64 ‖ payload length u16.
pub const HEADER_LEN: usize = 1 + 1 + 1 + 4 + 8 + 8 + 2;

/// Largest operation payload a request may carry (an MTU bound, like
/// [`protocols::wire::SealedFrame::MAX_PAYLOAD`]: a malicious length
/// must not force unbounded buffering).
pub const MAX_PAYLOAD: usize = 512;

/// Largest legal request frame.
pub const MAX_FRAME: usize = HEADER_LEN + MAX_PAYLOAD;

/// The four metered operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// ECDSA signature over the payload (one kG on the device model).
    Sign,
    /// ECDSA verification (one kG + one kP).
    Verify,
    /// ECDH shared secret against a peer key (one kP).
    Ecdh,
    /// ECIES encryption to a recipient key (one kG + one kP).
    Ecies,
}

impl Op {
    /// All operations, in wire-code order.
    pub const ALL: [Op; 4] = [Op::Sign, Op::Verify, Op::Ecdh, Op::Ecies];

    /// The wire code (1-based; 0 is reserved as invalid).
    pub fn code(self) -> u8 {
        match self {
            Op::Sign => 1,
            Op::Verify => 2,
            Op::Ecdh => 3,
            Op::Ecies => 4,
        }
    }

    fn from_code(code: u8) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.code() == code)
    }

    /// Human-readable name (metrics keys, rendered reports).
    pub fn name(self) -> &'static str {
        match self {
            Op::Sign => "sign",
            Op::Verify => "verify",
            Op::Ecdh => "ecdh",
            Op::Ecies => "ecies",
        }
    }
}

/// Request priority: the degradation ladder sheds [`Priority::Low`]
/// first, then [`Priority::Normal`]; [`Priority::High`] survives until
/// the plane rejects everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort traffic, first to be shed.
    Low,
    /// Default traffic class.
    Normal,
    /// Survives all but the full-reject degradation level.
    High,
}

impl Priority {
    /// The wire code (also the shedding order).
    pub fn code(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    fn from_code(code: u8) -> Option<Priority> {
        match code {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }
}

/// One decoded operation with its operands, fully validated (points on
/// curve and in the prime-order subgroup, signature scalars in range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRequest {
    /// Sign `msg` with the plane's signing key.
    Sign {
        /// The message to sign.
        msg: Vec<u8>,
    },
    /// Verify `sig` over `msg` under `public`.
    Verify {
        /// The claimed signer's public key.
        public: Affine,
        /// The signature to check.
        sig: Signature,
        /// The signed message.
        msg: Vec<u8>,
    },
    /// Derive the shared secret with `peer`.
    Ecdh {
        /// The peer's public key.
        peer: Affine,
    },
    /// Encrypt `msg` to `recipient`.
    Ecies {
        /// The recipient's public key.
        recipient: Affine,
        /// The plaintext.
        msg: Vec<u8>,
    },
}

impl OpRequest {
    /// Which metered operation this is.
    pub fn op(&self) -> Op {
        match self {
            OpRequest::Sign { .. } => Op::Sign,
            OpRequest::Verify { .. } => Op::Verify,
            OpRequest::Ecdh { .. } => Op::Ecdh,
            OpRequest::Ecies { .. } => Op::Ecies,
        }
    }

    /// The base point a table-warming admission prefetches (the kP
    /// operand), if the operation has one.
    pub fn warm_point(&self) -> Option<&Affine> {
        match self {
            OpRequest::Sign { .. } => None,
            OpRequest::Verify { public, .. } => Some(public),
            OpRequest::Ecdh { peer } => Some(peer),
            OpRequest::Ecies { recipient, .. } => Some(recipient),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client identity (quota and replay state are per client).
    pub client: u32,
    /// Per-client sequence number (replay protection).
    pub seq: u64,
    /// Traffic class for the shedding ladder.
    pub priority: Priority,
    /// Absolute deadline tick; 0 means "use the plane's default".
    pub deadline: u64,
    /// The operation and operands.
    pub op: OpRequest,
}

/// Everything that can be wrong with a received frame — the service
/// plane's error taxonomy. Every variant has a stable wire code and
/// round-trips through [`Status::Rejected`] encoding, so clients (and
/// the negative-path tests) can distinguish a truncation from an
/// off-curve key from a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the header or the declared payload requires.
    Truncated {
        /// Bytes the format needs.
        need: u64,
        /// Bytes received.
        got: u64,
    },
    /// Longer than the frame MTU allows.
    Oversize {
        /// Maximum accepted length.
        max: u64,
        /// Length received (or declared).
        got: u64,
    },
    /// Unknown wire-format version.
    BadVersion {
        /// Version byte received.
        got: u8,
    },
    /// Unknown operation (or response status) code.
    UnknownOp {
        /// Code byte received.
        got: u8,
    },
    /// Unknown priority code.
    BadPriority {
        /// Code byte received.
        got: u8,
    },
    /// Frame length disagrees with the declared payload length.
    LengthMismatch {
        /// Payload bytes the header declared.
        declared: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The operation payload has the wrong shape for its op.
    BadPayload {
        /// Minimum payload bytes the op needs.
        need: u64,
        /// Payload bytes received.
        got: u64,
    },
    /// The sequence number was already accepted (or fell below the
    /// replay window's floor).
    Replayed {
        /// Sequence number received.
        seq: u64,
        /// Oldest sequence number the window still accepts.
        floor: u64,
    },
    /// An operand failed the radio-layer validation (bad point, bad
    /// scalar, …).
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, got } => {
                write!(f, "frame truncated: need {need} bytes, got {got}")
            }
            FrameError::Oversize { max, got } => {
                write!(f, "frame oversize: at most {max} bytes, got {got}")
            }
            FrameError::BadVersion { got } => write!(f, "unknown frame version {got}"),
            FrameError::UnknownOp { got } => write!(f, "unknown operation code {got}"),
            FrameError::BadPriority { got } => write!(f, "unknown priority code {got}"),
            FrameError::LengthMismatch { declared, got } => {
                write!(f, "payload length mismatch: declared {declared}, got {got}")
            }
            FrameError::BadPayload { need, got } => {
                write!(f, "malformed op payload: need {need} bytes, got {got}")
            }
            FrameError::Replayed { seq, floor } => {
                write!(f, "replayed sequence {seq} (window floor {floor})")
            }
            FrameError::Wire(e) => write!(f, "operand rejected: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

impl FrameError {
    /// The stable wire code plus two detail words — everything needed
    /// to reconstruct the exact variant on the other side (see
    /// [`FrameError::from_parts`]).
    pub fn to_parts(self) -> (u16, u64, u64) {
        match self {
            FrameError::Truncated { need, got } => (1, need, got),
            FrameError::Oversize { max, got } => (2, max, got),
            FrameError::BadVersion { got } => (3, got as u64, 0),
            FrameError::UnknownOp { got } => (4, got as u64, 0),
            FrameError::BadPriority { got } => (5, got as u64, 0),
            FrameError::LengthMismatch { declared, got } => (6, declared, got),
            FrameError::BadPayload { need, got } => (7, need, got),
            FrameError::Replayed { seq, floor } => (8, seq, floor),
            FrameError::Wire(w) => match w {
                WireError::BadPoint(DecompressError::InvalidTag) => (16, 0, 0),
                WireError::BadPoint(DecompressError::NotOnCurve) => (17, 0, 0),
                WireError::IdentityPoint => (18, 0, 0),
                WireError::WrongOrder => (19, 0, 0),
                WireError::BadScalar => (20, 0, 0),
                WireError::BadTag => (21, 0, 0),
                WireError::BadLength { need, got } => (22, need as u64, got as u64),
                WireError::Oversize { max, got } => (23, max as u64, got as u64),
                WireError::Replayed { seq, last } => (24, seq as u64, last as u64),
            },
        }
    }

    /// Rebuilds the variant encoded by [`FrameError::to_parts`].
    /// Returns `None` for unknown codes (a corrupted response frame).
    pub fn from_parts(code: u16, a: u64, b: u64) -> Option<FrameError> {
        Some(match code {
            1 => FrameError::Truncated { need: a, got: b },
            2 => FrameError::Oversize { max: a, got: b },
            3 => FrameError::BadVersion { got: a as u8 },
            4 => FrameError::UnknownOp { got: a as u8 },
            5 => FrameError::BadPriority { got: a as u8 },
            6 => FrameError::LengthMismatch {
                declared: a,
                got: b,
            },
            7 => FrameError::BadPayload { need: a, got: b },
            8 => FrameError::Replayed { seq: a, floor: b },
            16 => FrameError::Wire(WireError::BadPoint(DecompressError::InvalidTag)),
            17 => FrameError::Wire(WireError::BadPoint(DecompressError::NotOnCurve)),
            18 => FrameError::Wire(WireError::IdentityPoint),
            19 => FrameError::Wire(WireError::WrongOrder),
            20 => FrameError::Wire(WireError::BadScalar),
            21 => FrameError::Wire(WireError::BadTag),
            22 => FrameError::Wire(WireError::BadLength {
                need: a as usize,
                got: b as usize,
            }),
            23 => FrameError::Wire(WireError::Oversize {
                max: a as usize,
                got: b as usize,
            }),
            24 => FrameError::Wire(WireError::Replayed {
                seq: a as u32,
                last: b as u32,
            }),
            _ => return None,
        })
    }
}

/// A decode failure with whatever attribution the header yielded before
/// the error (zero client/seq when even the header was unreadable), so
/// the plane can still address its typed rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeFailure {
    /// Client id from the header, or 0.
    pub client: u32,
    /// Sequence number from the header, or 0.
    pub seq: u64,
    /// What was wrong.
    pub error: FrameError,
}

/// Encodes a request frame.
///
/// # Panics
///
/// Panics if the operation payload exceeds [`MAX_PAYLOAD`] (a
/// sender-side programming error; the peer would reject the frame).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let payload = match &req.op {
        OpRequest::Sign { msg } => msg.clone(),
        OpRequest::Verify { public, sig, msg } => {
            let mut p = encode_public_key(public).to_vec();
            p.extend_from_slice(&encode_signature(sig));
            p.extend_from_slice(msg);
            p
        }
        OpRequest::Ecdh { peer } => encode_public_key(peer).to_vec(),
        OpRequest::Ecies { recipient, msg } => {
            let mut p = encode_public_key(recipient).to_vec();
            p.extend_from_slice(msg);
            p
        }
    };
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "request payload exceeds the frame MTU"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(VERSION);
    out.push(req.op.op().code());
    out.push(req.priority.code());
    out.extend_from_slice(&req.client.to_be_bytes());
    out.extend_from_slice(&req.seq.to_be_bytes());
    out.extend_from_slice(&req.deadline.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

fn be_u16(b: &[u8]) -> u16 {
    u16::from_be_bytes(b.try_into().expect("2 bytes"))
}

fn be_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes(b.try_into().expect("4 bytes"))
}

fn be_u64(b: &[u8]) -> u64 {
    u64::from_be_bytes(b.try_into().expect("8 bytes"))
}

/// Decodes and fully validates a request frame. Total: every byte
/// string yields a request or a typed [`DecodeFailure`], never a panic.
pub fn decode_request(bytes: &[u8]) -> Result<Request, DecodeFailure> {
    let anon = |error| DecodeFailure {
        client: 0,
        seq: 0,
        error,
    };
    if bytes.len() < HEADER_LEN {
        return Err(anon(FrameError::Truncated {
            need: HEADER_LEN as u64,
            got: bytes.len() as u64,
        }));
    }
    if bytes.len() > MAX_FRAME {
        return Err(anon(FrameError::Oversize {
            max: MAX_FRAME as u64,
            got: bytes.len() as u64,
        }));
    }
    // The header is present: every later error carries attribution.
    let client = be_u32(&bytes[3..7]);
    let seq = be_u64(&bytes[7..15]);
    let fail = |error| DecodeFailure { client, seq, error };
    if bytes[0] != VERSION {
        return Err(fail(FrameError::BadVersion { got: bytes[0] }));
    }
    let op =
        Op::from_code(bytes[1]).ok_or_else(|| fail(FrameError::UnknownOp { got: bytes[1] }))?;
    let priority = Priority::from_code(bytes[2])
        .ok_or_else(|| fail(FrameError::BadPriority { got: bytes[2] }))?;
    let deadline = be_u64(&bytes[15..23]);
    let declared = be_u16(&bytes[23..25]) as usize;
    let payload = &bytes[HEADER_LEN..];
    if declared != payload.len() {
        return Err(fail(FrameError::LengthMismatch {
            declared: declared as u64,
            got: payload.len() as u64,
        }));
    }
    let shape = |need: usize| FrameError::BadPayload {
        need: need as u64,
        got: payload.len() as u64,
    };
    let op = match op {
        Op::Sign => OpRequest::Sign {
            msg: payload.to_vec(),
        },
        Op::Verify => {
            if payload.len() < 91 {
                return Err(fail(shape(91)));
            }
            let public = decode_public_key_slice(&payload[..31]).map_err(|e| fail(e.into()))?;
            let sig = decode_signature_slice(&payload[31..91]).map_err(|e| fail(e.into()))?;
            OpRequest::Verify {
                public,
                sig,
                msg: payload[91..].to_vec(),
            }
        }
        Op::Ecdh => {
            if payload.len() != 31 {
                return Err(fail(shape(31)));
            }
            let peer = decode_public_key_slice(payload).map_err(|e| fail(e.into()))?;
            OpRequest::Ecdh { peer }
        }
        Op::Ecies => {
            if payload.len() < 31 {
                return Err(fail(shape(31)));
            }
            let recipient = decode_public_key_slice(&payload[..31]).map_err(|e| fail(e.into()))?;
            OpRequest::Ecies {
                recipient,
                msg: payload[31..].to_vec(),
            }
        }
    };
    Ok(Request {
        client,
        seq,
        priority,
        deadline,
        op,
    })
}

/// Outcome of one request — the typed response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// The operation executed; the bytes are its result (a 60-byte
    /// signature, a 1-byte verification verdict, a 32-byte shared
    /// secret, or an ECIES ciphertext).
    Done(Vec<u8>),
    /// The admission queue is full — explicit backpressure, try again
    /// after `retry_after` ticks.
    Busy {
        /// Ticks until the backlog should have drained.
        retry_after: u64,
    },
    /// The client's token bucket cannot cover the quoted cost yet.
    QuotaExceeded {
        /// Modeled cycles the request would cost.
        quote_cycles: u64,
        /// Ticks until the bucket has refilled enough.
        retry_after: u64,
    },
    /// The degradation ladder shed this priority class.
    Shed {
        /// Ladder level at the time of shedding.
        level: u8,
    },
    /// The plane is at the full-reject degradation level; the quote
    /// tells the client what to budget for when it backs off.
    Overloaded {
        /// Modeled cycles the request would have cost.
        quote_cycles: u64,
        /// Ticks until the backlog should have drained.
        retry_after: u64,
    },
    /// The deadline passed before (or while) the request was queued.
    Expired {
        /// The request's absolute deadline tick.
        deadline: u64,
        /// The tick at which expiry was detected.
        now: u64,
    },
    /// The frame failed decoding or admission validation.
    Rejected(FrameError),
}

impl Status {
    fn code(&self) -> u8 {
        match self {
            Status::Done(_) => 0,
            Status::Busy { .. } => 1,
            Status::QuotaExceeded { .. } => 2,
            Status::Shed { .. } => 3,
            Status::Overloaded { .. } => 4,
            Status::Expired { .. } => 5,
            Status::Rejected(_) => 6,
        }
    }

    /// Short name for counters and rendered reports.
    pub fn name(&self) -> &'static str {
        match self {
            Status::Done(_) => "done",
            Status::Busy { .. } => "busy",
            Status::QuotaExceeded { .. } => "quota",
            Status::Shed { .. } => "shed",
            Status::Overloaded { .. } => "overloaded",
            Status::Expired { .. } => "expired",
            Status::Rejected(_) => "rejected",
        }
    }
}

/// A response frame: the addressed request plus its [`Status`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Client the response addresses.
    pub client: u32,
    /// Sequence number the response addresses.
    pub seq: u64,
    /// The outcome.
    pub status: Status,
}

/// Fixed response header: version ‖ status ‖ client u32 ‖ seq u64.
pub const RESPONSE_HEADER_LEN: usize = 1 + 1 + 4 + 8;

/// Encodes a response frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(RESPONSE_HEADER_LEN + 18);
    out.push(VERSION);
    out.push(resp.status.code());
    out.extend_from_slice(&resp.client.to_be_bytes());
    out.extend_from_slice(&resp.seq.to_be_bytes());
    match &resp.status {
        Status::Done(bytes) => {
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        Status::Busy { retry_after } => out.extend_from_slice(&retry_after.to_be_bytes()),
        Status::QuotaExceeded {
            quote_cycles,
            retry_after,
        }
        | Status::Overloaded {
            quote_cycles,
            retry_after,
        } => {
            out.extend_from_slice(&quote_cycles.to_be_bytes());
            out.extend_from_slice(&retry_after.to_be_bytes());
        }
        Status::Shed { level } => out.push(*level),
        Status::Expired { deadline, now } => {
            out.extend_from_slice(&deadline.to_be_bytes());
            out.extend_from_slice(&now.to_be_bytes());
        }
        Status::Rejected(err) => {
            let (code, a, b) = err.to_parts();
            out.extend_from_slice(&code.to_be_bytes());
            out.extend_from_slice(&a.to_be_bytes());
            out.extend_from_slice(&b.to_be_bytes());
        }
    }
    out
}

/// Decodes a response frame (the client side of the taxonomy
/// round-trip). Total, like [`decode_request`].
pub fn decode_response(bytes: &[u8]) -> Result<Response, FrameError> {
    if bytes.len() < RESPONSE_HEADER_LEN {
        return Err(FrameError::Truncated {
            need: RESPONSE_HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[0] != VERSION {
        return Err(FrameError::BadVersion { got: bytes[0] });
    }
    let client = be_u32(&bytes[2..6]);
    let seq = be_u64(&bytes[6..14]);
    let body = &bytes[RESPONSE_HEADER_LEN..];
    let need = |need: usize| FrameError::Truncated {
        need: (RESPONSE_HEADER_LEN + need) as u64,
        got: bytes.len() as u64,
    };
    let status = match bytes[1] {
        0 => {
            if body.len() < 2 {
                return Err(need(2));
            }
            let len = be_u16(&body[..2]) as usize;
            if body.len() != 2 + len {
                return Err(FrameError::LengthMismatch {
                    declared: len as u64,
                    got: (body.len() - 2) as u64,
                });
            }
            Status::Done(body[2..].to_vec())
        }
        1 => {
            if body.len() != 8 {
                return Err(need(8));
            }
            Status::Busy {
                retry_after: be_u64(body),
            }
        }
        code @ (2 | 4) => {
            if body.len() != 16 {
                return Err(need(16));
            }
            let quote_cycles = be_u64(&body[..8]);
            let retry_after = be_u64(&body[8..]);
            if code == 2 {
                Status::QuotaExceeded {
                    quote_cycles,
                    retry_after,
                }
            } else {
                Status::Overloaded {
                    quote_cycles,
                    retry_after,
                }
            }
        }
        3 => {
            if body.len() != 1 {
                return Err(need(1));
            }
            Status::Shed { level: body[0] }
        }
        5 => {
            if body.len() != 16 {
                return Err(need(16));
            }
            Status::Expired {
                deadline: be_u64(&body[..8]),
                now: be_u64(&body[8..]),
            }
        }
        6 => {
            if body.len() != 18 {
                return Err(need(18));
            }
            let code = be_u16(&body[..2]);
            let a = be_u64(&body[2..10]);
            let b = be_u64(&body[10..18]);
            let err = FrameError::from_parts(code, a, b)
                .ok_or(FrameError::BadPayload { need: 18, got: 18 })?;
            Status::Rejected(err)
        }
        got => return Err(FrameError::UnknownOp { got }),
    };
    Ok(Response {
        client,
        seq,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{Keypair, SigningKey};

    #[test]
    fn request_roundtrip_all_ops() {
        let key = SigningKey::generate(b"frame signer");
        let peer = Keypair::generate(b"frame peer");
        let sig = key.sign(b"framed message");
        let ops = [
            OpRequest::Sign {
                msg: b"framed message".to_vec(),
            },
            OpRequest::Verify {
                public: *key.public(),
                sig,
                msg: b"framed message".to_vec(),
            },
            OpRequest::Ecdh {
                peer: *peer.public(),
            },
            OpRequest::Ecies {
                recipient: *peer.public(),
                msg: b"config update".to_vec(),
            },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let req = Request {
                client: 7 + i as u32,
                seq: 100 + i as u64,
                priority: Priority::Normal,
                deadline: 42,
                op,
            };
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes), Ok(req), "op {i}");
        }
    }

    #[test]
    fn request_decode_rejects_bad_frames_with_attribution() {
        let req = Request {
            client: 9,
            seq: 55,
            priority: Priority::High,
            deadline: 0,
            op: OpRequest::Sign { msg: b"m".to_vec() },
        };
        let bytes = encode_request(&req);
        // Truncated below the header: anonymous.
        let short = decode_request(&bytes[..10]).unwrap_err();
        assert_eq!(short.client, 0);
        assert!(matches!(short.error, FrameError::Truncated { .. }));
        // Bad version: attributed.
        let mut bad = bytes.clone();
        bad[0] = 9;
        let fail = decode_request(&bad).unwrap_err();
        assert_eq!((fail.client, fail.seq), (9, 55));
        assert_eq!(fail.error, FrameError::BadVersion { got: 9 });
        // Unknown op, bad priority, length mismatch.
        let mut bad = bytes.clone();
        bad[1] = 0;
        assert_eq!(
            decode_request(&bad).unwrap_err().error,
            FrameError::UnknownOp { got: 0 }
        );
        let mut bad = bytes.clone();
        bad[2] = 7;
        assert_eq!(
            decode_request(&bad).unwrap_err().error,
            FrameError::BadPriority { got: 7 }
        );
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            decode_request(&bad).unwrap_err().error,
            FrameError::LengthMismatch {
                declared: 1,
                got: 2
            }
        );
        // Oversize.
        let huge = vec![1u8; MAX_FRAME + 1];
        assert!(matches!(
            decode_request(&huge).unwrap_err().error,
            FrameError::Oversize { .. }
        ));
    }

    #[test]
    fn request_decode_validates_operands() {
        // An ecdh frame carrying the identity encoding.
        let mut bytes = vec![VERSION, Op::Ecdh.code(), 1];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&31u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 31]);
        assert_eq!(
            decode_request(&bytes).unwrap_err().error,
            FrameError::Wire(WireError::IdentityPoint)
        );
    }

    #[test]
    fn response_roundtrip_every_status() {
        let statuses = [
            Status::Done(vec![1, 2, 3]),
            Status::Done(Vec::new()),
            Status::Busy { retry_after: 3 },
            Status::QuotaExceeded {
                quote_cycles: 2_000_000,
                retry_after: 5,
            },
            Status::Shed { level: 2 },
            Status::Overloaded {
                quote_cycles: 4_500_000,
                retry_after: 9,
            },
            Status::Expired {
                deadline: 10,
                now: 12,
            },
            Status::Rejected(FrameError::Wire(WireError::WrongOrder)),
        ];
        for (i, status) in statuses.into_iter().enumerate() {
            let resp = Response {
                client: i as u32,
                seq: 1000 + i as u64,
                status,
            };
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes), Ok(resp), "status {i}");
        }
    }

    #[test]
    fn frame_error_codes_roundtrip() {
        let everything = [
            FrameError::Truncated { need: 25, got: 3 },
            FrameError::Oversize { max: 537, got: 600 },
            FrameError::BadVersion { got: 9 },
            FrameError::UnknownOp { got: 0 },
            FrameError::BadPriority { got: 7 },
            FrameError::LengthMismatch {
                declared: 12,
                got: 13,
            },
            FrameError::BadPayload { need: 91, got: 12 },
            FrameError::Replayed { seq: 5, floor: 9 },
            FrameError::Wire(WireError::BadPoint(DecompressError::InvalidTag)),
            FrameError::Wire(WireError::BadPoint(DecompressError::NotOnCurve)),
            FrameError::Wire(WireError::IdentityPoint),
            FrameError::Wire(WireError::WrongOrder),
            FrameError::Wire(WireError::BadScalar),
            FrameError::Wire(WireError::BadTag),
            FrameError::Wire(WireError::BadLength { need: 31, got: 30 }),
            FrameError::Wire(WireError::Oversize { max: 10, got: 11 }),
            FrameError::Wire(WireError::Replayed { seq: 4, last: 9 }),
        ];
        for err in everything {
            let (code, a, b) = err.to_parts();
            assert_eq!(FrameError::from_parts(code, a, b), Some(err));
        }
        assert_eq!(FrameError::from_parts(999, 0, 0), None);
    }
}
