//! The acceptance criterion of the gas meter: a pre-execution quote
//! must match a post-execution measurement of the same canonical
//! kernels EXACTLY — bit-identical cycles and energy — on the default
//! target and on a non-default `--target`, because both sides are the
//! same deterministic cost model evaluated on the same inputs.

use koblitz::modeled::ModeledMul;
use koblitz::{generator, order};
use m0plus::target::{by_name, default_target};
use service::cost::{canonical_scalar, CostTable, COST_TIER};
use service::frame::Op;

/// Independently re-runs the canonical kernels (fresh modeled state,
/// no shared cache) and checks the quoted prices bit-for-bit.
fn assert_quotes_exact(target: &'static m0plus::target::TargetSpec) {
    let table = CostTable::shared(target);
    let k = canonical_scalar();

    let mut mm = ModeledMul::with_target(COST_TIER, target);
    let kg = mm.kg(&k);
    assert_eq!(
        table.kg.cycles,
        kg.report.cycles,
        "{}: quoted kG cycles must equal measured",
        target.name()
    );
    assert_eq!(
        table.kg.energy_pj.to_bits(),
        kg.report.energy_pj.to_bits(),
        "{}: quoted kG energy must be bit-identical",
        target.name()
    );

    let mut mm = ModeledMul::with_target(COST_TIER, target);
    let kp = mm.kp(&generator(), &k);
    assert_eq!(
        table.kp.cycles,
        kp.report.cycles,
        "{}: quoted kP cycles must equal measured",
        target.name()
    );
    assert_eq!(
        table.kp.energy_pj.to_bits(),
        kp.report.energy_pj.to_bits(),
        "{}: quoted kP energy must be bit-identical",
        target.name()
    );

    // Composed quotes: sign = kG, ecdh = kP, verify = ecies = kG + kP.
    assert_eq!(table.quote(Op::Sign).cycles, kg.report.cycles);
    assert_eq!(table.quote(Op::Ecdh).cycles, kp.report.cycles);
    assert_eq!(
        table.quote(Op::Verify).cycles,
        kg.report.cycles + kp.report.cycles
    );
    assert_eq!(
        table.quote(Op::Ecies).energy_pj.to_bits(),
        (kg.report.energy_pj + kp.report.energy_pj).to_bits()
    );
}

#[test]
fn quotes_match_measured_cycles_exactly_on_default_target() {
    assert_quotes_exact(default_target());
}

#[test]
fn quotes_match_measured_cycles_exactly_on_non_default_target() {
    let m0 = by_name("cortex-m0").expect("registry target");
    assert!(!std::ptr::eq(m0, default_target()));
    assert_quotes_exact(m0);
    // Distinct targets price distinctly (the meter really is
    // target-aware, not a constant).
    assert_ne!(
        CostTable::shared(m0).kp.cycles,
        CostTable::shared(default_target()).kp.cycles
    );
}

#[test]
fn measuring_twice_is_bit_identical() {
    let a = CostTable::measure(default_target());
    let b = CostTable::measure(default_target());
    assert_eq!(a.kg.cycles, b.kg.cycles);
    assert_eq!(a.kp.cycles, b.kp.cycles);
    assert_eq!(a.kg.energy_pj.to_bits(), b.kg.energy_pj.to_bits());
    assert_eq!(a.kp.energy_pj.to_bits(), b.kp.energy_pj.to_bits());
}

#[test]
fn canonical_scalar_is_stable_across_calls() {
    assert_eq!(canonical_scalar(), canonical_scalar());
    assert!(canonical_scalar() < order());
}
