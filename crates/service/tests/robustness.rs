//! Attacker's-eye paths through the service plane: every test feeds
//! wire bytes — not constructed structs — through the same decode and
//! admission code a deployed plane runs, and asserts a typed outcome
//! for every input. Never a panic, never a silent drop.

use prng::SplitMix64;
use protocols::{Keypair, SigningKey};
use service::frame::{
    decode_request, decode_response, encode_request, encode_response, FrameError, OpRequest,
    Priority, Request, Status, HEADER_LEN, MAX_FRAME,
};
use service::plane::{PlaneConfig, ServicePlane};

/// One seeded mutation of a valid frame: truncate, extend, flip bits
/// or substitute a byte — the same attacker model the protocols
/// robustness suite uses (both feed total decoders).
fn mutate(template: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = template.to_vec();
    match rng.below(5) {
        0 => {
            let len = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(len);
        }
        1 => {
            for _ in 0..rng.below(16) + 1 {
                buf.push(rng.next_u32() as u8);
            }
        }
        2 if !buf.is_empty() => {
            for _ in 0..rng.below(4) + 1 {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
        }
        3 if !buf.is_empty() => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = rng.next_u32() as u8;
        }
        _ => {}
    }
    buf
}

/// Valid template frames covering all four operations.
fn templates(seq_base: u64) -> Vec<Vec<u8>> {
    let key = SigningKey::generate(b"robustness signer");
    let peer = Keypair::generate(b"robustness peer");
    let sig = key.sign(b"robust message");
    let ops = [
        OpRequest::Sign {
            msg: b"robust message".to_vec(),
        },
        OpRequest::Verify {
            public: *key.public(),
            sig,
            msg: b"robust message".to_vec(),
        },
        OpRequest::Ecdh {
            peer: *peer.public(),
        },
        OpRequest::Ecies {
            recipient: *peer.public(),
            msg: b"telemetry config".to_vec(),
        },
    ];
    ops.into_iter()
        .enumerate()
        .map(|(i, op)| {
            encode_request(&Request {
                client: 1 + i as u32,
                seq: seq_base + i as u64,
                priority: Priority::Normal,
                deadline: 0,
                op,
            })
        })
        .collect()
}

#[test]
fn fuzzed_request_frames_decode_totally_and_reencode_canonically() {
    let mut rng = SplitMix64::new(0x0b57_0001);
    let mut rejected = 0u64;
    let mut accepted = 0u64;
    for round in 0..500u64 {
        for template in templates(round * 16) {
            let buf = mutate(&template, &mut rng);
            match decode_request(&buf) {
                Err(fail) => {
                    rejected += 1;
                    // The typed error must survive the response
                    // encoding — a client can always learn why.
                    let resp = service::frame::Response {
                        client: fail.client,
                        seq: fail.seq,
                        status: Status::Rejected(fail.error),
                    };
                    let decoded =
                        decode_response(&encode_response(&resp)).expect("taxonomy round-trips");
                    assert_eq!(decoded, resp, "bytes {buf:02x?}");
                }
                Ok(req) => {
                    accepted += 1;
                    // Decoding is canonical: re-encoding a decoded
                    // request decodes to the same request.
                    let reencoded = encode_request(&req);
                    assert_eq!(decode_request(&reencoded), Ok(req), "bytes {buf:02x?}");
                }
            }
        }
    }
    // The corpus must exercise both paths (arm 4 is a no-op, so the
    // untouched templates keep the accept path alive).
    assert!(rejected > 500, "mutations barely exercised the error paths");
    assert!(accepted > 100, "accept path never exercised");
}

#[test]
fn fuzzed_frames_through_the_plane_always_get_typed_outcomes() {
    let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
    cfg.queue_capacity = 8;
    cfg.workers = 1;
    let mut plane = ServicePlane::new(cfg).expect("valid config");
    let mut rng = SplitMix64::new(0x0b57_0002);
    let mut submitted = 0u64;
    for round in 0..100u64 {
        for template in templates(round * 16) {
            let buf = mutate(&template, &mut rng);
            submitted += 1;
            if let Some(resp) = plane.submit(&buf) {
                // Every immediate outcome is a typed status that
                // round-trips through the wire encoding.
                let decoded =
                    decode_response(&encode_response(&resp)).expect("response encodes totally");
                assert_eq!(decoded, resp);
            }
            assert!(plane.accounted(), "books must balance after every frame");
        }
        // Drain a tick so admitted work completes and the queue cycles.
        for resp in plane.tick() {
            let decoded = decode_response(&encode_response(&resp)).expect("encodes");
            assert_eq!(decoded, resp);
        }
        assert!(plane.accounted(), "books must balance after every tick");
    }
    while plane.pending() > 0 {
        plane.tick();
    }
    let c = plane.counters();
    assert_eq!(c.submitted, submitted);
    assert!(c.decode_errors > 0, "corpus never hit the decoder");
    assert!(c.completed > 0, "corpus never produced completed work");
    assert!(plane.accounted());
}

#[test]
fn identical_fuzz_runs_produce_identical_response_streams() {
    let run = || {
        let mut cfg = PlaneConfig::for_target(m0plus::target::default_target());
        cfg.queue_capacity = 8;
        cfg.workers = 1;
        let mut plane = ServicePlane::new(cfg).expect("valid config");
        let mut rng = SplitMix64::new(0x0b57_0003);
        let mut stream = Vec::new();
        for round in 0..40u64 {
            for template in templates(round * 16) {
                if let Some(resp) = plane.submit(&mutate(&template, &mut rng)) {
                    stream.extend_from_slice(&encode_response(&resp));
                }
            }
            for resp in plane.tick() {
                stream.extend_from_slice(&encode_response(&resp));
            }
        }
        (stream, plane.counters())
    };
    let (s1, c1) = run();
    let (s2, c2) = run();
    assert_eq!(s1, s2, "response byte stream must be run-invariant");
    assert_eq!(c1, c2, "counters must be run-invariant");
}

#[test]
fn boundary_frames_are_rejected_with_exact_taxonomy() {
    let template = templates(0).remove(0);
    // Every truncation below the header is anonymous and typed.
    for len in 0..HEADER_LEN {
        let fail = decode_request(&template[..len.min(template.len())]).unwrap_err();
        assert_eq!((fail.client, fail.seq), (0, 0));
        assert!(matches!(fail.error, FrameError::Truncated { .. }));
    }
    // One past the MTU is oversize, not a buffer.
    let huge = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(
        decode_request(&huge).unwrap_err().error,
        FrameError::Oversize { .. }
    ));
    // Wrong version is attributed (the header was readable).
    let mut wrong = template.clone();
    wrong[0] ^= 0xff;
    let fail = decode_request(&wrong).unwrap_err();
    assert_eq!(fail.client, 1);
    assert!(matches!(fail.error, FrameError::BadVersion { .. }));
    // The empty input is the smallest truncation.
    assert!(matches!(
        decode_request(&[]).unwrap_err().error,
        FrameError::Truncated { got: 0, .. }
    ));
}
