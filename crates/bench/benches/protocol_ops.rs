//! Benchmarks of the WSN protocol layer (ECDH, ECDSA, the symmetric
//! primitives) — the application-level view of the paper's kG/kP costs.
//!
//! Run: `cargo bench -p bench --bench protocol_ops`

use bench::timing;
use protocols::{Aes128, Keypair, Sha256, SigningKey};
use std::hint::black_box;

fn main() {
    let alice = Keypair::generate(b"alice");
    let bob = Keypair::generate(b"bob");
    let g = timing::group("ecdh");
    let mut i = 0u64;
    g.bench("keypair generation (kG)", || {
        i += 1;
        Keypair::generate(black_box(&i.to_be_bytes()))
    });
    g.bench("shared secret (kP)", || {
        alice.shared_secret(black_box(bob.public()))
    });

    let key = SigningKey::generate(b"signer");
    let msg = b"sensor frame 0421: 23.4 C";
    let sig = key.sign(msg);
    let g = timing::group("ecdsa");
    g.bench("sign (kG)", || key.sign(black_box(msg)));
    g.bench("verify (kG + kP)", || {
        protocols::ecdsa::verify(key.public(), msg, &sig)
    });

    let g = timing::group("symmetric");
    let data = vec![0xA5u8; 1024];
    g.bench("sha256 1KiB", || Sha256::digest(black_box(&data)));
    let aes = Aes128::new(&[7u8; 16]);
    g.bench("aes128-ctr 1KiB", || {
        let mut buf = data.clone();
        aes.ctr_apply(&[1u8; 12], &mut buf);
        buf
    });
}
