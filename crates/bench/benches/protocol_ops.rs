//! Criterion benchmarks of the WSN protocol layer (ECDH, ECDSA, the
//! symmetric primitives) — the application-level view of the paper's
//! kG/kP costs.

use criterion::{criterion_group, criterion_main, Criterion};
use protocols::{Aes128, Keypair, Sha256, SigningKey};
use std::hint::black_box;

fn bench_ecdh(c: &mut Criterion) {
    let alice = Keypair::generate(b"alice");
    let bob = Keypair::generate(b"bob");
    let mut group = c.benchmark_group("ecdh");
    group.bench_function("keypair generation (kG)", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(Keypair::generate(black_box(&i.to_be_bytes())))
        })
    });
    group.bench_function("shared secret (kP)", |b| {
        b.iter(|| black_box(alice.shared_secret(black_box(bob.public()))))
    });
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let key = SigningKey::generate(b"signer");
    let msg = b"sensor frame 0421: 23.4 C";
    let sig = key.sign(msg);
    let mut group = c.benchmark_group("ecdsa");
    group.bench_function("sign (kG)", |b| b.iter(|| black_box(key.sign(black_box(msg)))));
    group.bench_function("verify (kG + kP)", |b| {
        b.iter(|| black_box(protocols::ecdsa::verify(key.public(), msg, &sig)))
    });
    group.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric");
    let data = vec![0xA5u8; 1024];
    group.bench_function("sha256 1KiB", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(&data))))
    });
    let aes = Aes128::new(&[7u8; 16]);
    group.bench_function("aes128-ctr 1KiB", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            aes.ctr_apply(&[1u8; 12], &mut buf);
            black_box(buf)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the workspace-wide bench run in
    // minutes; increase for publication-grade confidence intervals.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(30);
    targets = bench_ecdh, bench_ecdsa, bench_symmetric
}
criterion_main!(benches);
