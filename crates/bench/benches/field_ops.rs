//! Criterion micro-benchmarks of the portable F₂²³³ arithmetic: the
//! host-side (wall-clock) counterpart of the paper's Tables 2/5/6.
//! The multiplication-method comparison mirrors §3.3: on a modern host
//! the three LD variants differ much less than on the M0+ (the whole
//! point of the paper is that *memory traffic* dominates there), but
//! the windowed methods must still beat shift-and-add.

use bench::workloads::element;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_multipliers(c: &mut Criterion) {
    let a = element(1);
    let b = element(2);
    let mut group = c.benchmark_group("f2m_mul");
    for (name, f) in gf2m::mul::ALL_MULTIPLIERS {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(f(black_box(a), black_box(b))))
        });
    }
    group.finish();
}

fn bench_square(c: &mut Criterion) {
    let a = element(3);
    let mut group = c.benchmark_group("f2m_sqr");
    group.bench_function("table-based", |b| {
        b.iter(|| black_box(black_box(a).square()))
    });
    group.bench_function("via-multiplication", |b| {
        b.iter(|| black_box(gf2m::sqr::square_by_mul(black_box(a))))
    });
    group.finish();
}

fn bench_inversion(c: &mut Criterion) {
    let a = element(4);
    let mut group = c.benchmark_group("f2m_inv");
    group.bench_function("eea-optimized", |b| {
        b.iter(|| black_box(gf2m::inv::invert(black_box(a))))
    });
    group.bench_function("eea-simple", |b| {
        b.iter(|| black_box(gf2m::inv::invert_simple(black_box(a))))
    });
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let a = element(5);
    let b = element(6);
    let product = gf2m::mul::mul_poly_ld(a.words(), b.words());
    c.bench_function("f2m_reduce_trinomial", |bench| {
        bench.iter(|| black_box(gf2m::reduce::reduce(black_box(product))))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the workspace-wide bench run in
    // minutes; increase for publication-grade confidence intervals.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(30);
    targets = bench_multipliers, bench_square, bench_inversion, bench_reduction
}
criterion_main!(benches);
