//! Micro-benchmarks of the portable F₂²³³ arithmetic: the host-side
//! (wall-clock) counterpart of the paper's Tables 2/5/6. The
//! multiplication-method comparison mirrors §3.3: on a modern host the
//! three LD variants differ much less than on the M0+ (the whole point
//! of the paper is that *memory traffic* dominates there), but the
//! windowed methods must still beat shift-and-add.
//!
//! Run: `cargo bench -p bench --bench field_ops`

use bench::timing;
use bench::workloads::element;
use std::hint::black_box;

fn main() {
    let a = element(1);
    let b = element(2);
    let g = timing::group("f2m_mul");
    for (name, f) in gf2m::mul::ALL_MULTIPLIERS {
        g.bench(name, || f(black_box(a), black_box(b)));
    }

    let a = element(3);
    let g = timing::group("f2m_sqr");
    g.bench("table-based", || black_box(a).square());
    g.bench("via-multiplication", || {
        gf2m::sqr::square_by_mul(black_box(a))
    });

    let a = element(4);
    let g = timing::group("f2m_inv");
    g.bench("eea-optimized", || gf2m::inv::invert(black_box(a)));
    g.bench("eea-simple", || gf2m::inv::invert_simple(black_box(a)));

    let a = element(5);
    let b = element(6);
    let product = gf2m::mul::mul_poly_ld(a.words(), b.words());
    timing::bench("f2m_reduce_trinomial", || {
        gf2m::reduce::reduce(black_box(product))
    });
}
