//! Criterion benchmarks of the point-multiplication algorithms — the
//! wall-clock counterpart of Tables 4/6/7 — plus the prime-curve
//! baseline for the §3.1 comparison.

use bench::workloads::scalar;
use criterion::{criterion_group, criterion_main, Criterion};
use koblitz::curve::generator;
use std::hint::black_box;

fn bench_koblitz(c: &mut Criterion) {
    let g = generator();
    let k = scalar(1);
    // Warm the fixed-point table outside the timing loop.
    let _ = koblitz::mul::generator_table();
    let mut group = c.benchmark_group("sect233k1");
    group.bench_function("kP wTNAF w=4 (paper kP)", |b| {
        b.iter(|| black_box(koblitz::mul::mul_wtnaf(black_box(&g), black_box(&k), 4)))
    });
    group.bench_function("kG wTNAF w=6 offline table (paper kG)", |b| {
        b.iter(|| black_box(koblitz::mul::mul_g(black_box(&k))))
    });
    group.bench_function("kP plain TNAF", |b| {
        b.iter(|| black_box(koblitz::mul::mul_tnaf(black_box(&g), black_box(&k))))
    });
    group.bench_function("kP Montgomery ladder (Sec. 5 future work)", |b| {
        b.iter(|| black_box(koblitz::mul::montgomery_ladder(black_box(&g), black_box(&k))))
    });
    group.bench_function("kP binary double-and-add (reference)", |b| {
        b.iter(|| black_box(black_box(&g).mul_binary(black_box(&k))))
    });
    group.finish();
}

fn bench_prime_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("prime_baseline");
    for curve in primefield::curves::all() {
        let g = curve.generator();
        let mut k = [0u32; 8];
        for (i, limb) in k.iter_mut().enumerate() {
            *limb = 0x9E37_79B9u32.wrapping_mul(i as u32 + 1);
        }
        k[7] &= 0x0FFF_FFFF;
        group.bench_function(curve.name, |b| {
            b.iter(|| black_box(curve.mul(black_box(&g), black_box(&k))))
        });
    }
    group.finish();
}

fn bench_recoding(c: &mut Criterion) {
    let k = scalar(9);
    let mut group = c.benchmark_group("tnaf_recode");
    for w in [1u32, 4, 6] {
        group.bench_function(format!("w={w}"), |b| {
            b.iter(|| black_box(koblitz::tnaf::recode(black_box(&k), w)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the workspace-wide bench run in
    // minutes; increase for publication-grade confidence intervals.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(30);
    targets = bench_koblitz, bench_prime_baseline, bench_recoding
}
criterion_main!(benches);
