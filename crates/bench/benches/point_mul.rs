//! Benchmarks of the point-multiplication algorithms — the wall-clock
//! counterpart of Tables 4/6/7 — plus the prime-curve baseline for the
//! §3.1 comparison.
//!
//! Run: `cargo bench -p bench --bench point_mul`

use bench::timing;
use bench::workloads::scalar;
use koblitz::curve::generator;
use std::hint::black_box;

fn main() {
    let g = generator();
    let k = scalar(1);
    // Warm the fixed-point table outside the timing loop.
    let _ = koblitz::mul::generator_table();
    let grp = timing::group("sect233k1");
    grp.bench("kP wTNAF w=4 (paper kP)", || {
        koblitz::mul::mul_wtnaf(black_box(&g), black_box(&k), 4)
    });
    grp.bench("kG wTNAF w=6 offline table (paper kG)", || {
        koblitz::mul::mul_g(black_box(&k))
    });
    grp.bench("kP plain TNAF", || {
        koblitz::mul::mul_tnaf(black_box(&g), black_box(&k))
    });
    grp.bench("kP Montgomery ladder (Sec. 5 future work)", || {
        koblitz::mul::montgomery_ladder(black_box(&g), black_box(&k))
    });
    grp.bench("kP binary double-and-add (reference)", || {
        black_box(&g).mul_binary(black_box(&k))
    });

    let grp = timing::group("prime_baseline");
    for curve in primefield::curves::all() {
        let g = curve.generator();
        let mut k = [0u32; 8];
        for (i, limb) in k.iter_mut().enumerate() {
            *limb = 0x9E37_79B9u32.wrapping_mul(i as u32 + 1);
        }
        k[7] &= 0x0FFF_FFFF;
        grp.bench(curve.name, || curve.mul(black_box(&g), black_box(&k)));
    }

    let k = scalar(9);
    let grp = timing::group("tnaf_recode");
    for w in [1u32, 4, 6] {
        grp.bench(&format!("w={w}"), || {
            koblitz::tnaf::recode(black_box(&k), w)
        });
    }
}
