//! Batch-throughput measurements: the three amortisations of the batch
//! engine, each measured rather than assumed.
//!
//! * **Batch inversion** — counted-tier cycle ratios of Montgomery's
//!   trick against pointwise EEA inversion, per batch size
//!   (deterministic: pure operation counts, no wall clock).
//! * **wTNAF table cache** — hit rates of the process-wide
//!   precomputation cache under gateway-shaped traffic (a few recurring
//!   public keys, many verifications each).
//! * **Protocol scheduler** — wall-clock operations/second of
//!   `sign_batch` / `verify_batch` / `ecdh_batch` swept over batch
//!   sizes and worker counts.
//! * **Predecoded executor** — A/B wall clock of replaying a recorded
//!   kernel through the per-step decoder vs the predecoded fragment,
//!   with a machine-state equality check proving the modeled outputs
//!   are bit-identical.
//! * **Superblock executor** — A/B wall clock of the predecoded
//!   fragment with per-step dispatch vs superblock dispatch (whole
//!   straight-line runs executed per interpreter iteration), again
//!   with a full machine-state equality check.
//! * **Bitsliced field backend** — A/B wall clock of the 64-lane
//!   bitsliced kernels against the portable scalar kernels (sqr, mul,
//!   batch-64 inversion) plus the batch-inversion crossover sweep,
//!   with a bit-identity check proving the values are byte-for-byte
//!   the same on every arm.
//! * **Sharded campaign** — wall clock of the fault campaign at 1, 2
//!   and 4 workers, asserting the rendered report stays byte-identical
//!   at every width.
//!
//! The wall-clock numbers (`ops_per_sec`, the executor speedups, the
//! shard scaling) vary with the host; everything else is
//! deterministic.

use gf2m::bitsliced::{self, set_bitsliced_enabled};
use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use koblitz::projective::batch_to_affine_counted;
use koblitz::{mul, LdPoint};
use m0plus::fault::{self, RecordedKernel};
use m0plus::{predecode_enabled, set_predecode_enabled};
use m0plus::{set_superblock_enabled, superblock_enabled};
use protocols::batch::{ecdh_batch, sign_batch, verify_batch, BatchConfig, VerifyJob};
use protocols::{Keypair, Signature, SigningKey};
use std::time::{Duration, Instant};

/// Measurement budget for one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Batch sizes for the counted amortisation rows.
    pub amortisation_sizes: Vec<usize>,
    /// Batch sizes for the ops/sec sweep.
    pub batch_sizes: Vec<usize>,
    /// Worker counts for the ops/sec sweep.
    pub worker_counts: Vec<usize>,
    /// Recurring public keys in the cache-traffic shape.
    pub cache_keys: usize,
    /// Verifications per recurring key.
    pub cache_ops_per_key: usize,
    /// Replays per arm of the predecode A/B.
    pub predecode_replays: usize,
    /// Replays per arm of the superblock A/B.
    pub superblock_replays: usize,
    /// Batch sizes for the bitsliced batch-inversion crossover sweep.
    pub bitsliced_sizes: Vec<usize>,
    /// Replays per arm of the bitsliced A/B.
    pub bitsliced_replays: usize,
    /// Runs per kernel for the sharded-campaign scaling sweep.
    pub shard_campaign_runs: usize,
    /// Worker counts for the sharded-campaign scaling sweep.
    pub shard_worker_counts: Vec<usize>,
    /// Minimum wall-clock window per ops/sec measurement.
    pub min_measure: Duration,
}

impl ThroughputConfig {
    /// Bounded CI smoke configuration (a few seconds end to end).
    pub fn smoke() -> ThroughputConfig {
        ThroughputConfig {
            amortisation_sizes: vec![2, 8, 64],
            batch_sizes: vec![16],
            worker_counts: vec![1, 4],
            cache_keys: 3,
            cache_ops_per_key: 8,
            predecode_replays: 12,
            superblock_replays: 24,
            bitsliced_sizes: vec![64, 256, 1024],
            bitsliced_replays: 32,
            shard_campaign_runs: 8,
            shard_worker_counts: vec![1, 2, 4],
            min_measure: Duration::from_millis(50),
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> ThroughputConfig {
        ThroughputConfig {
            amortisation_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
            batch_sizes: vec![4, 16, 64],
            worker_counts: vec![1, 2, 4, 8],
            cache_keys: 8,
            cache_ops_per_key: 32,
            predecode_replays: 40,
            superblock_replays: 40,
            bitsliced_sizes: vec![32, 64, 128, 256, 512, 1024],
            bitsliced_replays: 64,
            shard_campaign_runs: 48,
            shard_worker_counts: vec![1, 2, 4],
            min_measure: Duration::from_millis(250),
        }
    }
}

/// Counted-tier cost of converting one batch of points to affine vs
/// doing it pointwise (one EEA inversion per point).
#[derive(Debug, Clone, Copy)]
pub struct AmortisationRow {
    /// Points in the batch.
    pub size: usize,
    /// Cycles the batch spends inside its single EEA inversion.
    pub batch_inv_cycles: u64,
    /// Cycles of the whole batch conversion (inversion + Montgomery
    /// multiplications).
    pub batch_total_cycles: u64,
    /// Cycles `size` pointwise conversions spend on EEA inversions.
    pub individual_inv_cycles: u64,
}

impl AmortisationRow {
    /// `individual_inv_cycles / batch_inv_cycles` — how many times the
    /// inversion bill shrinks (the acceptance bound wants ≥ 8 at
    /// size 64).
    pub fn inv_shrink(&self) -> f64 {
        if self.batch_inv_cycles == 0 {
            return 1.0;
        }
        self.individual_inv_cycles as f64 / self.batch_inv_cycles as f64
    }

    /// `individual_inv_cycles / batch_total_cycles` — end-to-end win
    /// including the 3(N−1) multiplications the trick costs.
    pub fn total_shrink(&self) -> f64 {
        if self.batch_total_cycles == 0 {
            return 1.0;
        }
        self.individual_inv_cycles as f64 / self.batch_total_cycles as f64
    }
}

/// Counted amortisation of batch affine conversion per batch size
/// (deterministic: the counted tier tallies operations, not time).
pub fn batch_amortisation(sizes: &[usize]) -> Vec<AmortisationRow> {
    let g = koblitz::generator();
    sizes
        .iter()
        .map(|&size| {
            let points: Vec<LdPoint> = (1..=size as u64)
                .map(|i| mul::mul_wtnaf_proj(&g, &crate::workloads::scalar(i), 4))
                .collect();
            let batch = batch_to_affine_counted(&points);
            let individual: u64 = points
                .iter()
                .map(|p| {
                    gf2m::counted::inv_eea(p.z)
                        .map(|r| r.tally.cycles())
                        .unwrap_or(0)
                })
                .sum();
            AmortisationRow {
                size,
                batch_inv_cycles: batch.inv.cycles(),
                batch_total_cycles: batch.total().cycles(),
                individual_inv_cycles: individual,
            }
        })
        .collect()
}

/// wTNAF table-cache behaviour under gateway-shaped traffic.
#[derive(Debug, Clone, Copy)]
pub struct CacheReport {
    /// Distinct public keys in the traffic.
    pub keys: usize,
    /// Verifications per key.
    pub ops_per_key: usize,
    /// Cache hits during the traffic.
    pub hits: u64,
    /// Cache misses during the traffic.
    pub misses: u64,
}

impl CacheReport {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Replays gateway-shaped verification traffic — `keys` recurring
/// signers, `ops_per_key` signatures each — through the batch verifier
/// on one worker (single-threaded so the hit/miss counts are exact and
/// deterministic) and reports the table cache's counters over exactly
/// that traffic.
pub fn comb_cache_hit_rate(keys: usize, ops_per_key: usize) -> CacheReport {
    let signers: Vec<SigningKey> = (0..keys)
        .map(|i| SigningKey::generate(format!("throughput cache signer {i}").as_bytes()))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..keys * ops_per_key)
        .map(|i| format!("cache traffic frame {i:04}").into_bytes())
        .collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| signers[i % keys].sign(m))
        .collect();
    let jobs: Vec<VerifyJob> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| VerifyJob {
            public: signers[i % keys].public(),
            msg: m,
            sig: &sigs[i],
        })
        .collect();
    koblitz::cache::reset();
    let verdicts = verify_batch(&jobs, 1);
    assert!(
        verdicts.iter().all(Result::is_ok),
        "honest traffic verifies"
    );
    let stats = koblitz::cache::stats();
    CacheReport {
        keys,
        ops_per_key,
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// One point of the ops/sec sweep.
#[derive(Debug, Clone, Copy)]
pub struct OpsRow {
    /// The batched operation (`sign`, `verify`, `ecdh`).
    pub op: &'static str,
    /// Operations per batch call.
    pub batch: usize,
    /// Worker threads.
    pub workers: usize,
    /// Measured operations per second (wall clock; host-dependent).
    pub ops_per_sec: f64,
}

/// Repeats `f` (which performs `ops` operations per call) until
/// `min_measure` has elapsed and returns operations per second.
fn measure_ops(ops: usize, min_measure: Duration, mut f: impl FnMut()) -> f64 {
    // One warm-up call keeps lazy tables out of the measurement.
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < min_measure {
        f();
        calls += 1;
    }
    (calls * ops as u64) as f64 / start.elapsed().as_secs_f64()
}

/// Sweeps `sign_batch` / `verify_batch` / `ecdh_batch` over batch sizes
/// and worker counts, returning wall-clock ops/sec for each point.
pub fn ops_sweep(
    batch_sizes: &[usize],
    worker_counts: &[usize],
    min_measure: Duration,
) -> Vec<OpsRow> {
    let key = SigningKey::generate(b"throughput sweep signer");
    let kp = Keypair::generate(b"throughput sweep ecdh");
    let peers: Vec<koblitz::Affine> = (0..4)
        .map(|i| *Keypair::generate(format!("sweep peer {i}").as_bytes()).public())
        .collect();
    let mut rows = Vec::new();
    for &batch in batch_sizes {
        let msgs: Vec<Vec<u8>> = (0..batch)
            .map(|i| format!("sweep frame {i:05}").into_bytes())
            .collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| key.sign(m)).collect();
        let jobs: Vec<VerifyJob> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, sig)| VerifyJob {
                public: key.public(),
                msg: m,
                sig,
            })
            .collect();
        let peer_batch: Vec<koblitz::Affine> = (0..batch).map(|i| peers[i % peers.len()]).collect();
        for &workers in worker_counts {
            rows.push(OpsRow {
                op: "sign",
                batch,
                workers,
                ops_per_sec: measure_ops(batch, min_measure, || {
                    std::hint::black_box(sign_batch(&key, &msgs, workers));
                }),
            });
            rows.push(OpsRow {
                op: "verify",
                batch,
                workers,
                ops_per_sec: measure_ops(batch, min_measure, || {
                    std::hint::black_box(verify_batch(&jobs, workers));
                }),
            });
            rows.push(OpsRow {
                op: "ecdh",
                batch,
                workers,
                ops_per_sec: measure_ops(batch, min_measure, || {
                    std::hint::black_box(ecdh_batch(&kp, &peer_batch, workers));
                }),
            });
        }
    }
    rows
}

/// Best (minimum) wall-clock nanoseconds for one call of `f` over
/// `replays` timed calls, after one untimed warm-up. The A/Bs run on
/// shared CI hosts whose load fluctuates by 2× between runs; the
/// minimum is the standard way to read through scheduler interference,
/// since noise only ever adds time.
fn best_replay_ns(replays: usize, f: &mut dyn FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..replays.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// A/B comparison of the fragment executor with and without the
/// predecode layer on a replay-heavy kernel.
#[derive(Debug, Clone, Copy)]
pub struct PredecodeReport {
    /// Instructions in the replayed trace.
    pub trace_len: u64,
    /// Replays measured per arm.
    pub replays: usize,
    /// Best wall-clock nanoseconds per replay, per-step decoder.
    pub decoded_ns: f64,
    /// Best wall-clock nanoseconds per replay, predecoded fragment.
    pub predecoded_ns: f64,
}

impl PredecodeReport {
    /// Wall-clock speedup of the predecoded path (> 1 is faster).
    pub fn speedup(&self) -> f64 {
        if self.predecoded_ns == 0.0 {
            return 1.0;
        }
        self.decoded_ns / self.predecoded_ns
    }
}

/// Records the C-tier EEA inversion (the longest recorded kernel:
/// ~75k instructions) and replays it `replays` times through each
/// executor path, asserting the final machine states are bit-identical
/// before reporting the wall-clock difference.
///
/// The in-binary A/B is a conservative *lower bound* on the real
/// before/after: the per-step-decode arm here shares the optimised
/// machine accounting core and the scheduled replay hook, so it is
/// already faster than the engine this change replaced. Measured
/// against a build of the pre-change tree, the same replay improves by
/// more than this report shows (see EXPERIMENTS.md for the
/// methodology and numbers).
///
/// # Panics
///
/// Panics if the two paths produce any machine-state divergence — the
/// predecode layer must not change a single modeled cycle.
pub fn predecode_ab(replays: usize) -> PredecodeReport {
    let kernel = record_inv_kernel();
    let (pre, program, recording) = (&kernel.pre, &kernel.program, &kernel.recording);

    // Bit-identical first: one replay per path, full state equality.
    let was_enabled = predecode_enabled();
    set_predecode_enabled(false);
    let decoded_run = fault::replay(pre, program, recording, None);
    set_predecode_enabled(was_enabled);
    let predecoded_run = kernel.replay(None);
    assert_eq!(
        decoded_run.stats.as_ref().expect("clean replay").cycles,
        predecoded_run.stats.as_ref().expect("clean replay").cycles,
    );
    decoded_run
        .machine
        .assert_same_state(&predecoded_run.machine, "predecode A/B");

    set_predecode_enabled(false);
    let decoded_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(fault::replay(pre, program, recording, None));
    });
    set_predecode_enabled(was_enabled);
    let predecoded_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(kernel.replay(None));
    });

    PredecodeReport {
        trace_len: kernel.trace_len(),
        replays,
        decoded_ns,
        predecoded_ns,
    }
}

/// Records the C-tier EEA inversion — the longest recorded kernel
/// (~75k instructions), so the most replay-heavy A/B subject — as a
/// replayable kernel.
fn record_inv_kernel() -> RecordedKernel {
    let mut f = ModeledField::new(Tier::C);
    let a = f.alloc_init(crate::workloads::element(5));
    let z = f.alloc();
    let pre = f.machine().clone();
    f.machine_mut().start_recording();
    f.inv(z, a);
    let recording = f.machine_mut().take_recording();
    let program = m0plus::backend::translate(&recording).expect("recorded trace assembles");
    RecordedKernel::new(pre, program, recording)
}

/// A/B comparison of the predecoded executor with per-step dispatch
/// vs superblock dispatch on the same replay-heavy kernel.
#[derive(Debug, Clone, Copy)]
pub struct SuperblockReport {
    /// Instructions in the replayed trace.
    pub trace_len: u64,
    /// Replays measured per arm.
    pub replays: usize,
    /// Best wall-clock nanoseconds per replay, per-step dispatch.
    pub per_step_ns: f64,
    /// Best wall-clock nanoseconds per replay, superblock dispatch.
    pub superblock_ns: f64,
}

impl SuperblockReport {
    /// Wall-clock speedup of superblock dispatch (> 1 is faster).
    pub fn speedup(&self) -> f64 {
        if self.superblock_ns == 0.0 {
            return 1.0;
        }
        self.per_step_ns / self.superblock_ns
    }
}

/// Replays the recorded C-tier EEA inversion through the predecoded
/// executor with superblock dispatch disabled and enabled, asserting
/// the final machine states are bit-identical (down to the f64 energy
/// bits) before reporting the wall-clock difference. Both arms run the
/// same predecoded fragment; only the dispatch granularity differs.
///
/// # Panics
///
/// Panics on any machine-state divergence — superblock dispatch must
/// not change a single modeled cycle.
pub fn superblock_ab(replays: usize) -> SuperblockReport {
    let kernel = record_inv_kernel();

    let was_enabled = superblock_enabled();
    set_superblock_enabled(false);
    let per_step_run = kernel.replay(None);
    set_superblock_enabled(true);
    let superblock_run = kernel.replay(None);
    assert_eq!(
        per_step_run.stats.as_ref().expect("clean replay").cycles,
        superblock_run.stats.as_ref().expect("clean replay").cycles,
    );
    per_step_run
        .machine
        .assert_same_state(&superblock_run.machine, "superblock A/B");

    set_superblock_enabled(false);
    let per_step_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(kernel.replay(None));
    });
    set_superblock_enabled(true);
    let superblock_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(kernel.replay(None));
    });
    set_superblock_enabled(was_enabled);

    SuperblockReport {
        trace_len: kernel.trace_len(),
        replays,
        per_step_ns,
        superblock_ns,
    }
}

/// One point of the bitsliced batch-inversion crossover sweep.
#[derive(Debug, Clone, Copy)]
pub struct BitslicedRow {
    /// Elements inverted per call.
    pub size: usize,
    /// Best wall-clock nanoseconds per call, scalar Montgomery chain.
    pub scalar_ns: f64,
    /// Best wall-clock nanoseconds per call, hybrid bitsliced chain
    /// (transposes included).
    pub bitsliced_ns: f64,
}

impl BitslicedRow {
    /// Wall-clock speedup of the bitsliced chain (> 1 is faster).
    pub fn speedup(&self) -> f64 {
        if self.bitsliced_ns == 0.0 {
            return 1.0;
        }
        self.scalar_ns / self.bitsliced_ns
    }
}

/// A/B of the 64-lane bitsliced field backend against the portable
/// scalar kernels. All numbers are wall clock (host-dependent); the
/// asserted bit-identity of every value is the deterministic part.
#[derive(Debug, Clone)]
pub struct BitslicedReport {
    /// Replays measured per arm.
    pub replays: usize,
    /// 64 portable squarings, best ns.
    pub sqr_scalar_ns: f64,
    /// One 64-lane bitsliced squaring, best ns.
    pub sqr_bitsliced_ns: f64,
    /// 64 portable multiplications, best ns.
    pub mul_scalar_ns: f64,
    /// One 64-lane bitsliced multiplication, best ns.
    pub mul_bitsliced_ns: f64,
    /// 64 pointwise portable inversions, best ns.
    pub inv_scalar_ns: f64,
    /// One 64-lane bitsliced Itoh–Tsujii inversion (transposes
    /// included), best ns.
    pub inv_bitsliced_ns: f64,
    /// Batch-inversion crossover sweep, per batch size.
    pub invert_sweep: Vec<BitslicedRow>,
}

impl BitslicedReport {
    /// Lane-throughput speedup of the bitsliced squaring (> 1 is
    /// faster than 64 portable squarings).
    pub fn sqr_speedup(&self) -> f64 {
        if self.sqr_bitsliced_ns == 0.0 {
            return 1.0;
        }
        self.sqr_scalar_ns / self.sqr_bitsliced_ns
    }

    /// Lane-throughput speedup of the bitsliced multiplication.
    pub fn mul_speedup(&self) -> f64 {
        if self.mul_bitsliced_ns == 0.0 {
            return 1.0;
        }
        self.mul_scalar_ns / self.mul_bitsliced_ns
    }

    /// Speedup of one 64-lane batch inversion over 64 pointwise ones.
    pub fn inv_speedup(&self) -> f64 {
        if self.inv_bitsliced_ns == 0.0 {
            return 1.0;
        }
        self.inv_scalar_ns / self.inv_bitsliced_ns
    }

    /// The sweep row for the largest measured batch size.
    pub fn largest_sweep_row(&self) -> Option<&BitslicedRow> {
        self.invert_sweep.iter().max_by_key(|r| r.size)
    }
}

/// Measures the 64-lane bitsliced backend against the portable scalar
/// kernels: per-kernel lane throughput (sqr, mul, batch-64 inversion)
/// and the hybrid `batch_invert` crossover sweep over `sizes`.
///
/// Before any timing, every sweep size is checked bit-identical three
/// ways — scalar chain, the `batch_invert` dispatcher, and the
/// bitsliced seam called directly — so the wall-clock numbers can
/// never paper over a value regression.
///
/// # Panics
///
/// Panics if any arm produces a value that differs from the scalar
/// Montgomery chain in a single byte.
pub fn bitsliced_ab(sizes: &[usize], replays: usize) -> BitslicedReport {
    let max = sizes
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(bitsliced::LANES);
    // Deterministic inputs with a sprinkling of zeros so the skip
    // path is inside the measured (and value-checked) loop.
    let elems: Vec<Fe> = (0..max)
        .map(|i| {
            if i % 17 == 9 {
                Fe::ZERO
            } else {
                crate::workloads::element(i as u64 + 1)
            }
        })
        .collect();

    let was_enabled = bitsliced::bitsliced_enabled();
    for &size in sizes {
        let mut scalar = elems[..size].to_vec();
        set_bitsliced_enabled(false);
        gf2m::batch::batch_invert(&mut scalar);
        set_bitsliced_enabled(true);
        let mut dispatched = elems[..size].to_vec();
        gf2m::batch::batch_invert(&mut dispatched);
        let mut direct = elems[..size].to_vec();
        bitsliced::invert_elements(&mut direct);
        assert_eq!(scalar, dispatched, "batch_invert dispatch at {size}");
        assert_eq!(scalar, direct, "bitsliced seam at {size}");
    }

    // Lane-kernel A/B on one full 64-lane batch of non-zero elements.
    let xs: Vec<Fe> = (0..bitsliced::LANES)
        .map(|i| crate::workloads::element(2001 + i as u64))
        .collect();
    let ys: Vec<Fe> = (0..bitsliced::LANES)
        .map(|i| crate::workloads::element(4001 + i as u64))
        .collect();
    let bx = bitsliced::transpose_in(&xs);
    let by = bitsliced::transpose_in(&ys);
    let mut ws = bitsliced::MulScratch::new();

    let sqr_scalar_ns = best_replay_ns(replays, &mut || {
        for x in &xs {
            std::hint::black_box(x.square());
        }
    });
    let sqr_bitsliced_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(bx.sqr());
    });
    let mul_scalar_ns = best_replay_ns(replays, &mut || {
        for (x, y) in xs.iter().zip(&ys) {
            std::hint::black_box(*x * *y);
        }
    });
    let mul_bitsliced_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(bx.mul_with(&by, &mut ws));
    });
    let inv_scalar_ns = best_replay_ns(replays, &mut || {
        for x in &xs {
            std::hint::black_box(x.invert());
        }
    });
    let inv_bitsliced_ns = best_replay_ns(replays, &mut || {
        std::hint::black_box(
            bitsliced::transpose_in(&xs)
                .batch_inv()
                .transpose_out(bitsliced::LANES),
        );
    });

    // Crossover sweep: the production `batch_invert` entry point with
    // the toggle as the only difference between arms. Each call works
    // on a fresh copy; the copy cost is identical on both arms.
    let mut rows = Vec::new();
    let mut buf = elems.clone();
    for &size in sizes {
        let src = &elems[..size];
        set_bitsliced_enabled(false);
        let scalar_ns = best_replay_ns(replays, &mut || {
            buf[..size].copy_from_slice(src);
            gf2m::batch::batch_invert(&mut buf[..size]);
            std::hint::black_box(&buf);
        });
        set_bitsliced_enabled(true);
        let bitsliced_ns = best_replay_ns(replays, &mut || {
            buf[..size].copy_from_slice(src);
            bitsliced::invert_elements(&mut buf[..size]);
            std::hint::black_box(&buf);
        });
        rows.push(BitslicedRow {
            size,
            scalar_ns,
            bitsliced_ns,
        });
    }
    set_bitsliced_enabled(was_enabled);

    BitslicedReport {
        replays,
        sqr_scalar_ns,
        sqr_bitsliced_ns,
        mul_scalar_ns,
        mul_bitsliced_ns,
        inv_scalar_ns,
        inv_bitsliced_ns,
        invert_sweep: rows,
    }
}

/// One point of the sharded fault-campaign scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardScalingRow {
    /// Worker threads (and shard windows — one per worker).
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole campaign at this width.
    pub wall_ns: f64,
}

/// Times the fault campaign at each worker count (shards == workers),
/// asserting the rendered report stays byte-identical to the serial
/// run at every width. The wall clock is host-dependent; the asserted
/// invariance is the deterministic part.
///
/// # Panics
///
/// Panics if any sharded run renders differently from the serial run.
pub fn shard_scaling(runs_per_kernel: usize, worker_counts: &[usize]) -> Vec<ShardScalingRow> {
    let cfg = crate::campaign::CampaignConfig::new(7, runs_per_kernel);
    let baseline =
        crate::campaign::render_campaign(&crate::campaign::run_campaign_sharded(&cfg, 1, 1));
    worker_counts
        .iter()
        .map(|&workers| {
            let start = Instant::now();
            let report = crate::campaign::run_campaign_sharded(&cfg, workers, workers);
            let wall_ns = start.elapsed().as_nanos() as f64;
            assert_eq!(
                crate::campaign::render_campaign(&report),
                baseline,
                "sharded campaign diverged at {workers} workers"
            );
            ShardScalingRow { workers, wall_ns }
        })
        .collect()
}

/// Everything one throughput run measured.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Counted batch-inversion amortisation per batch size.
    pub amortisation: Vec<AmortisationRow>,
    /// Table-cache behaviour under recurring-key traffic.
    pub cache: CacheReport,
    /// Wall-clock ops/sec sweep.
    pub ops: Vec<OpsRow>,
    /// Predecode A/B result.
    pub predecode: PredecodeReport,
    /// Superblock A/B result.
    pub superblock: SuperblockReport,
    /// Bitsliced field-backend A/B result.
    pub bitsliced: BitslicedReport,
    /// Sharded-campaign scaling sweep.
    pub shard_scaling: Vec<ShardScalingRow>,
    /// Worker-pool width `BatchConfig::default()` resolves to on this
    /// host (`available_parallelism()`).
    pub batch_workers_default: usize,
}

/// Runs the full throughput suite under `config`.
pub fn run(config: &ThroughputConfig) -> ThroughputReport {
    ThroughputReport {
        amortisation: batch_amortisation(&config.amortisation_sizes),
        cache: comb_cache_hit_rate(config.cache_keys, config.cache_ops_per_key),
        ops: ops_sweep(
            &config.batch_sizes,
            &config.worker_counts,
            config.min_measure,
        ),
        predecode: predecode_ab(config.predecode_replays),
        superblock: superblock_ab(config.superblock_replays),
        bitsliced: bitsliced_ab(&config.bitsliced_sizes, config.bitsliced_replays),
        shard_scaling: shard_scaling(config.shard_campaign_runs, &config.shard_worker_counts),
        batch_workers_default: BatchConfig::default().effective_workers(),
    }
}

/// Human-readable rendering (what `--bin throughput` prints).
pub fn render(r: &ThroughputReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "batch inversion amortisation (counted tier, cycles)").unwrap();
    writeln!(
        w,
        "  {:>5} {:>14} {:>14} {:>16} {:>10} {:>10}",
        "size", "batch inv", "batch total", "pointwise inv", "inv/", "total/"
    )
    .unwrap();
    for row in &r.amortisation {
        writeln!(
            w,
            "  {:>5} {:>14} {:>14} {:>16} {:>9.1}x {:>9.1}x",
            row.size,
            row.batch_inv_cycles,
            row.batch_total_cycles,
            row.individual_inv_cycles,
            row.inv_shrink(),
            row.total_shrink()
        )
        .unwrap();
    }
    writeln!(
        w,
        "\nwTNAF table cache: {} keys x {} verifications: {} hits, {} misses ({:.1}% hit rate)",
        r.cache.keys,
        r.cache.ops_per_key,
        r.cache.hits,
        r.cache.misses,
        100.0 * r.cache.hit_rate()
    )
    .unwrap();
    writeln!(
        w,
        "\nbatch scheduler ops/sec (wall clock, host-dependent; default pool width {})",
        r.batch_workers_default
    )
    .unwrap();
    writeln!(
        w,
        "  {:>8} {:>6} {:>8} {:>12}",
        "op", "batch", "workers", "ops/sec"
    )
    .unwrap();
    for row in &r.ops {
        writeln!(
            w,
            "  {:>8} {:>6} {:>8} {:>12.1}",
            row.op, row.batch, row.workers, row.ops_per_sec
        )
        .unwrap();
    }
    writeln!(
        w,
        "\npredecoded executor: {} instruction trace, {} replays/arm",
        r.predecode.trace_len, r.predecode.replays
    )
    .unwrap();
    writeln!(
        w,
        "  per-step decode {:>12.0} ns/replay, predecoded {:>12.0} ns/replay ({:.2}x)",
        r.predecode.decoded_ns,
        r.predecode.predecoded_ns,
        r.predecode.speedup()
    )
    .unwrap();
    writeln!(
        w,
        "\nsuperblock executor: {} instruction trace, {} replays/arm",
        r.superblock.trace_len, r.superblock.replays
    )
    .unwrap();
    writeln!(
        w,
        "  per-step dispatch {:>10.0} ns/replay, superblock {:>10.0} ns/replay ({:.2}x)",
        r.superblock.per_step_ns,
        r.superblock.superblock_ns,
        r.superblock.speedup()
    )
    .unwrap();
    writeln!(
        w,
        "\nbitsliced field backend (64 lanes, values bit-identical; {} replays/arm)",
        r.bitsliced.replays
    )
    .unwrap();
    writeln!(
        w,
        "  sqr  64 portable {:>9.0} ns vs bitsliced {:>9.0} ns ({:.2}x)",
        r.bitsliced.sqr_scalar_ns,
        r.bitsliced.sqr_bitsliced_ns,
        r.bitsliced.sqr_speedup()
    )
    .unwrap();
    writeln!(
        w,
        "  mul  64 portable {:>9.0} ns vs bitsliced {:>9.0} ns ({:.2}x)",
        r.bitsliced.mul_scalar_ns,
        r.bitsliced.mul_bitsliced_ns,
        r.bitsliced.mul_speedup()
    )
    .unwrap();
    writeln!(
        w,
        "  inv  64 pointwise {:>8.0} ns vs bitsliced {:>9.0} ns ({:.2}x)",
        r.bitsliced.inv_scalar_ns,
        r.bitsliced.inv_bitsliced_ns,
        r.bitsliced.inv_speedup()
    )
    .unwrap();
    writeln!(
        w,
        "  batch_invert crossover sweep (dispatch threshold {}):",
        gf2m::bitsliced::CROSSOVER
    )
    .unwrap();
    for row in &r.bitsliced.invert_sweep {
        writeln!(
            w,
            "    n = {:>5}: scalar {:>9.0} ns vs bitsliced {:>9.0} ns ({:.2}x)",
            row.size,
            row.scalar_ns,
            row.bitsliced_ns,
            row.speedup()
        )
        .unwrap();
    }
    if !r.shard_scaling.is_empty() {
        let serial_ns = r.shard_scaling[0].wall_ns;
        writeln!(
            w,
            "\nsharded fault campaign (shards == workers; report byte-identical at every width)"
        )
        .unwrap();
        for row in &r.shard_scaling {
            writeln!(
                w,
                "  workers {:>2}: {:>9.1} ms ({:.2}x vs serial)",
                row.workers,
                row.wall_ns / 1e6,
                if row.wall_ns > 0.0 {
                    serial_ns / row.wall_ns
                } else {
                    1.0
                }
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortisation_meets_the_acceptance_bound_at_64() {
        let rows = batch_amortisation(&[64]);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(
            row.batch_inv_cycles * 8 <= row.individual_inv_cycles,
            "batch inversion {} vs pointwise {}",
            row.batch_inv_cycles,
            row.individual_inv_cycles
        );
        assert!(
            row.batch_total_cycles < row.individual_inv_cycles,
            "whole batch must still beat pointwise inversions"
        );
    }

    #[test]
    fn cache_traffic_hits_after_the_first_lookup_per_key() {
        let report = comb_cache_hit_rate(3, 4);
        // 12 verifications against 3 keys: at least one miss per key,
        // and the steady state is all hits.
        assert_eq!(report.hits + report.misses, 12);
        assert!(report.misses >= 3);
        assert!(report.hits >= 12 - 3 - 1, "hits = {}", report.hits);
        assert!(report.hit_rate() > 0.5);
    }

    #[test]
    fn predecode_replays_are_bit_identical() {
        // The assertions live inside predecode_ab; two replays per arm
        // keep the test quick.
        let report = predecode_ab(2);
        assert!(report.trace_len > 50_000, "inv trace is replay-heavy");
        assert!(report.decoded_ns > 0.0 && report.predecoded_ns > 0.0);
    }

    #[test]
    fn superblock_replays_are_bit_identical() {
        // The state-equality assertions live inside superblock_ab; two
        // replays per arm keep the test quick.
        let report = superblock_ab(2);
        assert!(report.trace_len > 50_000, "inv trace is replay-heavy");
        assert!(report.per_step_ns > 0.0 && report.superblock_ns > 0.0);
    }

    #[test]
    fn bitsliced_ab_asserts_bit_identity() {
        // The three-way value assertions live inside bitsliced_ab; two
        // replays per arm and small sizes keep the test quick. One
        // size below the crossover and one spanning multiple chunks
        // exercise both dispatch outcomes.
        let report = bitsliced_ab(&[16, 192], 2);
        assert_eq!(report.invert_sweep.len(), 2);
        assert!(report.sqr_bitsliced_ns > 0.0 && report.sqr_scalar_ns > 0.0);
        assert!(report.mul_bitsliced_ns > 0.0 && report.inv_bitsliced_ns > 0.0);
        assert!(report.invert_sweep.iter().all(|r| r.scalar_ns > 0.0));
    }

    #[test]
    fn shard_scaling_asserts_byte_identical_reports() {
        let rows = shard_scaling(4, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.wall_ns > 0.0));
    }

    #[test]
    fn smoke_sweep_produces_all_rows() {
        let rows = ops_sweep(&[4], &[1, 2], Duration::from_millis(5));
        assert_eq!(rows.len(), 6, "3 ops x 1 batch size x 2 worker counts");
        assert!(rows.iter().all(|r| r.ops_per_sec > 0.0));
    }
}
