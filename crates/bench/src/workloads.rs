//! Workload generation and shared measurement helpers for the table
//! regenerators.

use gf2m::modeled::{KernelFootprint, ModeledField, Tier};
use gf2m::Fe;
use koblitz::modeled::{ModeledMul, PointMulRun};
use koblitz::{order, Int};
use m0plus::{Backend, Category};

/// A deterministic full-size scalar (the paper averages over random
/// scalars; the cost model is data-independent up to digit patterns, so
/// a handful of fixed scalars gives the same averages reproducibly).
pub fn scalar(seed: u64) -> Int {
    let hex = format!("{:016x}", seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    Int::from_hex(&hex.repeat(4))
        .expect("valid hex")
        .mod_positive(&order())
}

/// A deterministic field element.
pub fn element(seed: u64) -> Fe {
    let mut s = seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
    let mut w = [0u32; 8];
    for x in w.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = (s >> 11) as u32;
    }
    Fe::from_words_reduced(w)
}

/// Cycle counts of the field kernels on one tier:
/// `(sqr, mul_main, mul_lut, inversion)`.
pub fn kernel_cycles(tier: Tier) -> (u64, u64, u64, u64) {
    kernel_cycles_with(tier, Backend::Direct)
}

/// [`kernel_cycles`] on an explicit execution backend. The totals are
/// asserted identical across backends by the tier tests; regenerating a
/// table with `--backend code` re-derives every number from assembled
/// Thumb-16 machine code.
pub fn kernel_cycles_with(tier: Tier, backend: Backend) -> (u64, u64, u64, u64) {
    let mut f = ModeledField::new_with_backend(tier, backend);
    let a = f.alloc_init(element(1));
    let b = f.alloc_init(element(2));
    let z = f.alloc();
    let snap = f.machine().snapshot();
    f.sqr(z, a);
    let sqr = f.machine().report_since(&snap).cycles;
    let snap = f.machine().snapshot();
    f.mul(z, a, b);
    let r = f.machine().report_since(&snap);
    let lut = r.category_cycles(Category::MultiplyPrecomputation);
    let mul_main = r.category_cycles(Category::Multiply);
    let snap = f.machine().snapshot();
    f.inv(z, a);
    let inv = f.machine().report_since(&snap).cycles;
    (sqr, mul_main, lut, inv)
}

/// Cycle count of the C-tier rotating-registers multiplication
/// (Table 6's "LD with rotating registers" row).
pub fn rotating_c_cycles() -> u64 {
    let mut f = ModeledField::new(Tier::C);
    let a = f.alloc_init(element(3));
    let b = f.alloc_init(element(4));
    let z = f.alloc();
    let snap = f.machine().snapshot();
    f.mul_rotating_c(z, a, b);
    let r = f.machine().report_since(&snap);
    r.category_cycles(Category::Multiply)
}

/// Per-kernel flash footprints of one full kP + kG on the code backend
/// (the code-size numbers the cycle tables can't show).
pub fn kernel_flash(tier: Tier) -> Vec<(&'static str, KernelFootprint)> {
    let mut mm = ModeledMul::with_backend(tier, Backend::Code);
    let g = koblitz::generator();
    mm.kp(&g, &scalar(1));
    mm.kg(&scalar(1));
    mm.field()
        .flash_report()
        .iter()
        .map(|(&name, &fp)| (name, fp))
        .collect()
}

/// Averaged modeled kP over `seeds` scalars.
pub fn average_kp(tier: Tier, seeds: std::ops::Range<u64>) -> PointMulRun {
    average_kp_with(tier, Backend::Direct, seeds)
}

/// [`average_kp`] on an explicit execution backend.
pub fn average_kp_with(tier: Tier, backend: Backend, seeds: std::ops::Range<u64>) -> PointMulRun {
    let g = koblitz::generator();
    let runs: Vec<PointMulRun> = seeds
        .map(|s| {
            let mut mm = ModeledMul::with_backend(tier, backend);
            mm.kp(&g, &scalar(s))
        })
        .collect();
    average(runs)
}

/// One modeled kP priced under a [`m0plus::target`] registry entry
/// (direct backend) — the cross-target export and table rows. With the
/// default target this is bit-identical to [`average_kp`] over the
/// same single seed.
pub fn kp_under_target(tier: Tier, target: &'static m0plus::TargetSpec, seed: u64) -> PointMulRun {
    let mut mm = ModeledMul::with_target(tier, target);
    mm.kp(&koblitz::generator(), &scalar(seed))
}

/// Averaged modeled kG over `seeds` scalars.
pub fn average_kg(tier: Tier, seeds: std::ops::Range<u64>) -> PointMulRun {
    average_kg_with(tier, Backend::Direct, seeds)
}

/// [`average_kg`] on an explicit execution backend.
pub fn average_kg_with(tier: Tier, backend: Backend, seeds: std::ops::Range<u64>) -> PointMulRun {
    let runs: Vec<PointMulRun> = seeds
        .map(|s| {
            let mut mm = ModeledMul::with_backend(tier, backend);
            mm.kg(&scalar(s))
        })
        .collect();
    average(runs)
}

/// Averaged RELIC-style multiplication (w = 4 online precomputation,
/// used for both its kG and kP).
pub fn average_relic(seeds: std::ops::Range<u64>) -> PointMulRun {
    let g = koblitz::generator();
    let runs: Vec<PointMulRun> = seeds
        .map(|s| {
            let mut mm = ModeledMul::new(Tier::RelicC);
            mm.run(&g, &scalar(s), 4, true)
        })
        .collect();
    average(runs)
}

/// Averages a set of runs into one representative run (cycle counts are
/// averaged; the result point is taken from the first run).
pub fn average(mut runs: Vec<PointMulRun>) -> PointMulRun {
    assert!(!runs.is_empty());
    if runs.len() == 1 {
        return runs.pop().expect("non-empty");
    }
    let first = runs[0].clone();
    let n = runs.len() as u64;
    let mut merged = first.report.clone();
    for r in &runs[1..] {
        merged = merged.merged(&r.report);
    }
    // Scale down: rebuild a report with averaged numbers by merging and
    // dividing cycles/energy. RunReport has no division; approximate by
    // reporting the merged totals divided by n through a fresh struct.
    let mut avg = merged.clone();
    avg.cycles /= n;
    avg.energy_pj /= n as f64;
    for (_, t) in avg.by_category.iter_mut() {
        t.cycles /= n;
        t.energy_pj /= n as f64;
    }
    PointMulRun {
        result: first.result,
        report: avg,
    }
}
