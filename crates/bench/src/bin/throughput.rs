//! Batch-throughput suite: batch-inversion amortisation, wTNAF cache
//! hit rates, scheduler ops/sec, the predecode and superblock A/Bs,
//! and the sharded-campaign scaling sweep.
//!
//! Run: `cargo run --release -p bench --bin throughput [-- --smoke]`
//!
//! `--smoke` bounds the run for CI (a few seconds); the default is the
//! full sweep EXPERIMENTS.md records. Cycle ratios and hit rates are
//! deterministic; ops/sec and the predecode speedup are wall clock and
//! vary with the host.

use bench::throughput::{self, ThroughputConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ThroughputConfig::smoke()
    } else {
        ThroughputConfig::full()
    };
    let report = throughput::run(&config);
    print!("{}", throughput::render(&report));
    // The two deterministic gates, re-asserted on every run.
    let at64 = report
        .amortisation
        .iter()
        .find(|r| r.size == 64)
        .expect("the sweep includes size 64");
    assert!(
        at64.batch_inv_cycles * 8 <= at64.individual_inv_cycles,
        "batch inversion bound violated"
    );
    println!(
        "\nGATE: batch-64 inversion shrink {:.1}x (>= 8x)",
        at64.inv_shrink()
    );
    println!(
        "GATE: predecoded replay bit-identical, {:.2}x wall-clock",
        report.predecode.speedup()
    );
    println!(
        "GATE: superblock replay bit-identical, {:.2}x wall-clock",
        report.superblock.speedup()
    );
    // Bitsliced gates: values are asserted bit-identical inside
    // bitsliced_ab; the wall-clock bounds are set well below the
    // measured numbers (sqr ~6.4x, batch_invert ~1.6x at 1024 on the
    // reference host) so host noise cannot flake them, while still
    // catching any regression that erases the win.
    assert!(
        report.bitsliced.sqr_speedup() >= 4.0,
        "bitsliced sqr lane throughput {:.2}x dropped below the 4x bound",
        report.bitsliced.sqr_speedup()
    );
    let largest = report
        .bitsliced
        .largest_sweep_row()
        .expect("the sweep is non-empty");
    assert!(
        largest.speedup() >= 1.2,
        "bitsliced batch_invert at {} is {:.2}x, below the 1.2x bound",
        largest.size,
        largest.speedup()
    );
    println!(
        "GATE: bitsliced values bit-identical; sqr {:.2}x (>= 4x), batch_invert@{} {:.2}x (>= 1.2x)",
        report.bitsliced.sqr_speedup(),
        largest.size,
        largest.speedup()
    );
    println!(
        "GATE: sharded campaign byte-identical at {} widths",
        report.shard_scaling.len()
    );
}
