//! Batch-throughput suite: batch-inversion amortisation, wTNAF cache
//! hit rates, scheduler ops/sec, the predecode and superblock A/Bs,
//! and the sharded-campaign scaling sweep.
//!
//! Run: `cargo run --release -p bench --bin throughput [-- --smoke]`
//!
//! `--smoke` bounds the run for CI (a few seconds); the default is the
//! full sweep EXPERIMENTS.md records. Cycle ratios and hit rates are
//! deterministic; ops/sec and the predecode speedup are wall clock and
//! vary with the host.

use bench::throughput::{self, ThroughputConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ThroughputConfig::smoke()
    } else {
        ThroughputConfig::full()
    };
    let report = throughput::run(&config);
    print!("{}", throughput::render(&report));
    // The two deterministic gates, re-asserted on every run.
    let at64 = report
        .amortisation
        .iter()
        .find(|r| r.size == 64)
        .expect("the sweep includes size 64");
    assert!(
        at64.batch_inv_cycles * 8 <= at64.individual_inv_cycles,
        "batch inversion bound violated"
    );
    println!(
        "\nGATE: batch-64 inversion shrink {:.1}x (>= 8x)",
        at64.inv_shrink()
    );
    println!(
        "GATE: predecoded replay bit-identical, {:.2}x wall-clock",
        report.predecode.speedup()
    );
    println!(
        "GATE: superblock replay bit-identical, {:.2}x wall-clock",
        report.superblock.speedup()
    );
    println!(
        "GATE: sharded campaign byte-identical at {} widths",
        report.shard_scaling.len()
    );
}
