//! Exports the key reproduction numbers as JSON (for plotting and
//! regression tracking), printed to stdout.
//!
//! Run: `cargo run --release -p bench --bin export_json > results.json`

use bench::workloads;
use gf2m::modeled::Tier;
use m0plus::Category;

fn main() {
    let kp = workloads::average_kp(Tier::Asm, 1..3);
    let kg = workloads::average_kg(Tier::Asm, 1..3);
    let relic = workloads::average_relic(1..3);
    let (sqr_asm, mul_asm, lut_asm, inv) = workloads::kernel_cycles(Tier::Asm);
    let (sqr_c, mul_c, _, inv_c) = workloads::kernel_cycles(Tier::C);

    let run_json = |name: &str, run: &koblitz::modeled::PointMulRun| {
        let cats: Vec<String> = Category::ALL
            .iter()
            .map(|&c| {
                format!(
                    "      {:?}: {}",
                    c.label().replace(' ', "_"),
                    run.report.category_cycles(c)
                )
            })
            .collect();
        format!(
            "  \"{name}\": {{\n    \"cycles\": {},\n    \"energy_uj\": {:.4},\n    \"time_ms\": {:.4},\n    \"power_uw\": {:.2},\n    \"categories\": {{\n{}\n    }}\n  }}",
            run.report.cycles,
            run.report.energy_uj(),
            run.report.time_ms(),
            run.report.average_power_uw(),
            cats.join(",\n")
        )
    };

    println!("{{");
    println!("  \"paper\": \"de Clercq et al., DAC 2014, 10.1145/2593069.2593238\",");
    println!("  \"clock_hz\": {},", m0plus::CLOCK_HZ);
    println!("{},", run_json("kp_this_work_asm", &kp));
    println!("{},", run_json("kg_this_work_asm", &kg));
    println!("{},", run_json("relic_style", &relic));
    println!("  \"kernels\": {{");
    println!("    \"mul_asm_cycles\": {mul_asm},");
    println!("    \"mul_lut_asm_cycles\": {lut_asm},");
    println!("    \"sqr_asm_cycles\": {sqr_asm},");
    println!("    \"mul_c_cycles\": {mul_c},");
    println!("    \"sqr_c_cycles\": {sqr_c},");
    println!("    \"inv_cycles\": {},", inv.min(inv_c));
    println!("    \"paper_mul_asm\": 3672,");
    println!("    \"paper_sqr_asm\": 395");
    println!("  }},");
    println!("  \"paper_targets\": {{");
    println!("    \"kp_cycles\": 2814827, \"kp_uj\": 34.16,");
    println!("    \"kg_cycles\": 1864470, \"kg_uj\": 20.63,");
    println!("    \"relic_kp_cycles\": 5621045");
    println!("  }}");
    println!("}}");
}
