//! Exports the key reproduction numbers as JSON (for plotting and
//! regression tracking): printed to stdout, and also written to a
//! versioned `BENCH_<n>.json` at the repository root (`n` = next free
//! index). The document is deterministic — fixed key order, fixed
//! seeds, no timestamps — so re-running on an unchanged tree produces a
//! byte-identical file, with one scoped exception: the
//! `throughput.wall_clock` and `campaign_engine` subtrees (marked
//! `"host_dependent": true`) record ops/sec, the predecode and
//! superblock replay speedups and the shard-scaling wall clocks, which
//! vary with the machine the export ran on. Everything outside those
//! subtrees is byte-stable — including the `service` subtree, whose
//! traffic runs are seeded and measured in modeled cycles, not wall
//! time.
//!
//! Run: `cargo run --release -p bench --bin export_json`

use bench::campaign::{self, CampaignConfig};
use bench::throughput::{self, ThroughputConfig};
use bench::traffic::{self, TrafficConfig};
use bench::workloads;
use gf2m::modeled::Tier;
use m0plus::Category;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier for downstream consumers; bump when the document
/// shape changes.
const SCHEMA: &str = "ecc233-bench/6";

fn main() {
    let doc = render();
    print!("{doc}");
    let root = repo_root();
    let path = next_free(&root);
    std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// The repository root, resolved from the bench crate's manifest
/// directory (crates/bench → two levels up).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a grandparent")
        .to_path_buf()
}

/// First `BENCH_<n>.json` that does not exist yet, starting at 1.
fn next_free(root: &Path) -> PathBuf {
    (1..)
        .map(|n| root.join(format!("BENCH_{n}.json")))
        .find(|p| !p.exists())
        .expect("unbounded range")
}

fn render() -> String {
    let kp = workloads::average_kp(Tier::Asm, 1..3);
    let kg = workloads::average_kg(Tier::Asm, 1..3);
    let relic = workloads::average_relic(1..3);
    let (sqr_asm, mul_asm, lut_asm, inv) = workloads::kernel_cycles(Tier::Asm);
    let (sqr_c, mul_c, _, inv_c) = workloads::kernel_cycles(Tier::C);

    let run_json = |name: &str, run: &koblitz::modeled::PointMulRun| {
        let cats: Vec<String> = Category::ALL
            .iter()
            .map(|&c| {
                format!(
                    "      {:?}: {}",
                    c.label().replace(' ', "_"),
                    run.report.category_cycles(c)
                )
            })
            .collect();
        format!(
            "  \"{name}\": {{\n    \"cycles\": {},\n    \"energy_uj\": {:.4},\n    \"time_ms\": {:.4},\n    \"power_uw\": {:.2},\n    \"categories\": {{\n{}\n    }}\n  }}",
            run.report.cycles,
            run.report.energy_uj(),
            run.report.time_ms(),
            run.report.average_power_uw(),
            cats.join(",\n")
        )
    };

    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "{{").unwrap();
    writeln!(w, "  \"schema\": \"{SCHEMA}\",").unwrap();
    writeln!(
        w,
        "  \"paper\": \"de Clercq et al., DAC 2014, 10.1145/2593069.2593238\","
    )
    .unwrap();
    writeln!(w, "  \"clock_hz\": {},", m0plus::CLOCK_HZ).unwrap();
    writeln!(w, "{},", run_json("kp_this_work_asm", &kp)).unwrap();
    writeln!(w, "{},", run_json("kg_this_work_asm", &kg)).unwrap();
    writeln!(w, "{},", run_json("relic_style", &relic)).unwrap();
    writeln!(w, "  \"kernels\": {{").unwrap();
    writeln!(w, "    \"mul_asm_cycles\": {mul_asm},").unwrap();
    writeln!(w, "    \"mul_lut_asm_cycles\": {lut_asm},").unwrap();
    writeln!(w, "    \"sqr_asm_cycles\": {sqr_asm},").unwrap();
    writeln!(w, "    \"mul_c_cycles\": {mul_c},").unwrap();
    writeln!(w, "    \"sqr_c_cycles\": {sqr_c},").unwrap();
    writeln!(w, "    \"inv_cycles\": {},", inv.min(inv_c)).unwrap();
    writeln!(w, "    \"paper_mul_asm\": 3672,").unwrap();
    writeln!(w, "    \"paper_sqr_asm\": 395").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"kernel_flash\": {{").unwrap();
    let flash = workloads::kernel_flash(Tier::Asm);
    for (i, (name, fp)) in flash.iter().enumerate() {
        let sep = if i + 1 == flash.len() { "" } else { "," };
        writeln!(
            w,
            "    \"{name}\": {{ \"flash_bytes\": {}, \"deduped_flash_bytes\": {}, \"instructions\": {}, \"calls\": {} }}{sep}",
            fp.flash_bytes, fp.deduped_flash_bytes, fp.instructions, fp.calls
        )
        .unwrap();
    }
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"robustness\": {{").unwrap();
    let cfg = CampaignConfig::new(7, 200);
    let campaign = campaign::run_campaign(&cfg);
    writeln!(
        w,
        "    \"campaign\": {{ \"seed\": {}, \"runs_per_kernel\": {}, \"target\": \"{}\" }},",
        campaign.seed, campaign.runs_per_kernel, campaign.target
    )
    .unwrap();
    writeln!(w, "    \"kernels\": {{").unwrap();
    for (i, k) in campaign.kernels.iter().enumerate() {
        let sep = if i + 1 == campaign.kernels.len() {
            ""
        } else {
            ","
        };
        writeln!(
            w,
            "      \"{}\": {{ \"trace_len\": {}, \"aborted\": {}, \"benign\": {}, \"altered\": {}, \"detect_recompute\": {:.4}, \"detect_full\": {:.4}, \"silent_unhardened\": {:.4}, \"silent_full\": {:.4} }}{sep}",
            k.name,
            k.trace_len,
            k.aborted,
            k.benign,
            k.altered,
            k.rate_recompute(),
            k.rate_full(),
            k.silent_unhardened(),
            k.silent_full(),
        )
        .unwrap();
    }
    writeln!(w, "    }},").unwrap();
    writeln!(
        w,
        "    \"overall_detect_full\": {:.4},",
        campaign.overall_rate_full()
    )
    .unwrap();
    writeln!(w, "    \"countermeasure_overhead\": {{").unwrap();
    let overheads = campaign::measure_overheads();
    for (i, o) in overheads.iter().enumerate() {
        let sep = if i + 1 == overheads.len() { "" } else { "," };
        writeln!(
            w,
            "      \"{}\": {{ \"cycles\": {}, \"energy_pj\": {:.1}, \"flash_bytes\": {}, \"note\": \"{}\" }}{sep}",
            o.name, o.cycles, o.energy_pj, o.flash_bytes, o.note
        )
        .unwrap();
    }
    writeln!(w, "    }}").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"leakage\": {{").unwrap();
    let leak_cfg = verify::LeakageConfig {
        seed: 0x1ea4a9e,
        cheap_pairs: 4,
        expensive_pairs: 1,
        target: m0plus::target::default_target(),
    };
    let verdicts = verify::leakage::run_campaign(&leak_cfg);
    writeln!(
        w,
        "    \"campaign\": {{ \"seed\": {}, \"cheap_pairs\": {}, \"expensive_pairs\": {} }},",
        leak_cfg.seed, leak_cfg.cheap_pairs, leak_cfg.expensive_pairs
    )
    .unwrap();
    writeln!(w, "    \"kernels\": {{").unwrap();
    for (i, v) in verdicts.iter().enumerate() {
        let sep = if i + 1 == verdicts.len() { "" } else { "," };
        writeln!(
            w,
            "      \"{}\": {{ \"pairs\": {}, \"trace_events\": {}, \"pc\": \"{}\", \"addr\": \"{}\", \"cycles\": \"{}\", \"verdict\": \"{}\" }}{sep}",
            v.name,
            v.pairs,
            v.trace_events,
            v.class_label(0),
            v.class_label(1),
            v.class_label(2),
            v.verdict(),
        )
        .unwrap();
    }
    writeln!(w, "    }},").unwrap();
    let leaks = verdicts.iter().filter(|v| !v.ok()).count();
    writeln!(w, "    \"leaks\": {leaks}").unwrap();
    writeln!(w, "  }},").unwrap();
    let tp = throughput::run(&ThroughputConfig::full());
    writeln!(w, "  \"throughput\": {{").unwrap();
    writeln!(w, "    \"amortisation\": {{").unwrap();
    for (i, r) in tp.amortisation.iter().enumerate() {
        let sep = if i + 1 == tp.amortisation.len() {
            ""
        } else {
            ","
        };
        writeln!(
            w,
            "      \"{}\": {{ \"batch_inv_cycles\": {}, \"batch_total_cycles\": {}, \"individual_inv_cycles\": {}, \"inv_shrink\": {:.2} }}{sep}",
            r.size, r.batch_inv_cycles, r.batch_total_cycles, r.individual_inv_cycles, r.inv_shrink()
        )
        .unwrap();
    }
    writeln!(w, "    }},").unwrap();
    writeln!(
        w,
        "    \"wtnaf_cache\": {{ \"keys\": {}, \"ops_per_key\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},",
        tp.cache.keys, tp.cache.ops_per_key, tp.cache.hits, tp.cache.misses, tp.cache.hit_rate()
    )
    .unwrap();
    writeln!(w, "    \"wall_clock\": {{").unwrap();
    writeln!(w, "      \"host_dependent\": true,").unwrap();
    writeln!(w, "      \"ops_per_sec\": {{").unwrap();
    for (i, r) in tp.ops.iter().enumerate() {
        let sep = if i + 1 == tp.ops.len() { "" } else { "," };
        writeln!(
            w,
            "        \"{}_b{}_w{}\": {:.1}{sep}",
            r.op, r.batch, r.workers, r.ops_per_sec
        )
        .unwrap();
    }
    writeln!(w, "      }},").unwrap();
    writeln!(
        w,
        "      \"predecode\": {{ \"trace_len\": {}, \"replays\": {}, \"decoded_ns_per_replay\": {:.0}, \"predecoded_ns_per_replay\": {:.0}, \"speedup\": {:.2} }},",
        tp.predecode.trace_len,
        tp.predecode.replays,
        tp.predecode.decoded_ns,
        tp.predecode.predecoded_ns,
        tp.predecode.speedup()
    )
    .unwrap();
    writeln!(w, "      \"bitsliced\": {{").unwrap();
    writeln!(
        w,
        "        \"lanes\": 64, \"crossover\": {}, \"replays\": {}, \"values_bit_identical\": true,",
        gf2m::bitsliced::CROSSOVER,
        tp.bitsliced.replays
    )
    .unwrap();
    writeln!(
        w,
        "        \"sqr_speedup\": {:.2}, \"mul_speedup\": {:.2}, \"inv64_speedup\": {:.2},",
        tp.bitsliced.sqr_speedup(),
        tp.bitsliced.mul_speedup(),
        tp.bitsliced.inv_speedup()
    )
    .unwrap();
    writeln!(w, "        \"invert_sweep\": {{").unwrap();
    for (i, r) in tp.bitsliced.invert_sweep.iter().enumerate() {
        let sep = if i + 1 == tp.bitsliced.invert_sweep.len() {
            ""
        } else {
            ","
        };
        writeln!(
            w,
            "          \"{}\": {{ \"scalar_ns\": {:.0}, \"bitsliced_ns\": {:.0}, \"speedup\": {:.2} }}{sep}",
            r.size, r.scalar_ns, r.bitsliced_ns, r.speedup()
        )
        .unwrap();
    }
    writeln!(w, "        }}").unwrap();
    writeln!(w, "      }}").unwrap();
    writeln!(w, "    }}").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"campaign_engine\": {{").unwrap();
    writeln!(w, "    \"host_dependent\": true,").unwrap();
    writeln!(
        w,
        "    \"superblock\": {{ \"trace_len\": {}, \"replays\": {}, \"per_step_ns_per_replay\": {:.0}, \"superblock_ns_per_replay\": {:.0}, \"speedup\": {:.2} }},",
        tp.superblock.trace_len,
        tp.superblock.replays,
        tp.superblock.per_step_ns,
        tp.superblock.superblock_ns,
        tp.superblock.speedup()
    )
    .unwrap();
    writeln!(w, "    \"shard_scaling\": {{").unwrap();
    writeln!(w, "      \"report_byte_identical\": true,").unwrap();
    let serial_ns = tp.shard_scaling.first().map(|r| r.wall_ns).unwrap_or(0.0);
    for (i, r) in tp.shard_scaling.iter().enumerate() {
        let sep = if i + 1 == tp.shard_scaling.len() {
            ""
        } else {
            ","
        };
        let speedup = if r.wall_ns > 0.0 {
            serial_ns / r.wall_ns
        } else {
            1.0
        };
        writeln!(
            w,
            "      \"workers_{}\": {{ \"wall_ms\": {:.1}, \"speedup_vs_serial\": {:.2} }}{sep}",
            r.workers,
            r.wall_ns / 1e6,
            speedup
        )
        .unwrap();
    }
    writeln!(w, "    }}").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"service\": {{").unwrap();
    let service_runs = [
        (
            "smoke",
            TrafficConfig::smoke(m0plus::target::default_target()),
        ),
        (
            "overload",
            TrafficConfig::overload(m0plus::target::default_target()),
        ),
    ];
    for (ri, (label, cfg)) in service_runs.iter().enumerate() {
        let rsep = if ri + 1 == service_runs.len() {
            ""
        } else {
            ","
        };
        let r = traffic::run(cfg);
        let c = &r.counters;
        writeln!(w, "    \"{label}\": {{").unwrap();
        writeln!(
            w,
            "      \"config\": {{ \"target\": \"{}\", \"seed\": {}, \"ticks\": {}, \"load_permille\": {}, \"adversarial_permille\": {}, \"clients\": {} }},",
            cfg.target.name(), cfg.seed, cfg.ticks, cfg.load_permille, cfg.adversarial_permille, cfg.clients
        )
        .unwrap();
        writeln!(
            w,
            "      \"counters\": {{ \"submitted\": {}, \"admitted\": {}, \"completed\": {}, \"decode_errors\": {}, \"replays\": {}, \"shed\": {}, \"quota_rejected\": {}, \"busy_rejected\": {}, \"overload_rejected\": {}, \"expired_on_arrival\": {}, \"timeouts\": {}, \"client_evictions\": {}, \"warms\": {}, \"level_changes\": {}, \"max_level\": {} }},",
            c.submitted, c.admitted, c.completed, c.decode_errors, c.replays, c.shed,
            c.quota_rejected, c.busy_rejected, c.overload_rejected, c.expired_on_arrival,
            c.timeouts, c.client_evictions, c.warms, c.level_changes, c.max_level
        )
        .unwrap();
        writeln!(
            w,
            "      \"executed\": {{ \"cycles\": {}, \"energy_uj\": {:.4}, \"verify_false\": {} }},",
            c.executed_cycles,
            c.executed_energy_pj / 1e6,
            r.verify_false
        )
        .unwrap();
        writeln!(
            w,
            "      \"latency_ticks\": {{ \"p50\": {}, \"p99\": {}, \"drain_ticks\": {} }},",
            r.p50_latency_ticks, r.p99_latency_ticks, r.drain_ticks
        )
        .unwrap();
        writeln!(
            w,
            "      \"wtnaf_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {} }},",
            r.cache.hits, r.cache.misses, r.cache.evictions, r.cache.entries
        )
        .unwrap();
        writeln!(w, "      \"quote_vs_actual\": {{").unwrap();
        for (i, s) in r.quote_errors.iter().enumerate() {
            let sep = if i + 1 == r.quote_errors.len() {
                ""
            } else {
                ","
            };
            writeln!(
                w,
                "        \"{}_{i}\": {{ \"quoted_cycles\": {}, \"actual_cycles\": {}, \"err_permille\": {} }}{sep}",
                s.kernel, s.quoted, s.actual,
                s.err_permille()
            )
            .unwrap();
        }
        writeln!(w, "      }},").unwrap();
        writeln!(w, "      \"quote_exact\": {},", r.quote_exact).unwrap();
        writeln!(w, "      \"accounting_balanced\": {}", c.accounted(0)).unwrap();
        writeln!(w, "    }}{rsep}").unwrap();
    }
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"targets\": {{").unwrap();
    let specs = m0plus::target::registry();
    for (i, spec) in specs.iter().enumerate() {
        let sep = if i + 1 == specs.len() { "" } else { "," };
        let run = workloads::kp_under_target(Tier::Asm, spec, 1);
        writeln!(
            w,
            "    \"{}\": {{ \"clock_hz\": {}, \"kp_cycles\": {}, \"kp_uj\": {:.4}, \"kp_time_ms\": {:.4} }}{sep}",
            spec.name(),
            spec.clock_hz(),
            run.report.cycles,
            run.report.energy_uj(),
            run.report.time_ms(),
        )
        .unwrap();
    }
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"paper_targets\": {{").unwrap();
    writeln!(w, "    \"kp_cycles\": 2814827, \"kp_uj\": 34.16,").unwrap();
    writeln!(w, "    \"kg_cycles\": 1864470, \"kg_uj\": 20.63,").unwrap();
    writeln!(w, "    \"relic_kp_cycles\": 5621045").unwrap();
    writeln!(w, "  }}").unwrap();
    writeln!(w, "}}").unwrap();
    out
}
