//! Regenerates the paper's Figure 1. Run: cargo run --release -p bench --bin figure1
fn main() {
    print!("{}", bench::tables::figure1());
}
