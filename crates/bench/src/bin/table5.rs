//! Regenerates the paper's Table 5.
//!
//! Run: `cargo run --release -p bench --bin table5 [-- --backend code|direct]`
//!
//! With `--backend code` the reproduction row is re-measured by
//! assembling the recorded kernels to Thumb-16 and re-executing the
//! machine code (identical cycle totals, plus flash footprints).

use m0plus::Backend;

fn main() {
    print!("{}", bench::tables::table5_with(backend_from_args()));
}

fn backend_from_args() -> Backend {
    bench::backend_from_args(std::env::args().skip(1))
}
