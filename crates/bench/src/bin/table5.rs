//! Regenerates the paper's Table 5. Run: cargo run --release -p bench --bin table5
fn main() {
    print!("{}", bench::tables::table5());
}
