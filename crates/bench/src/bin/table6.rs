//! Regenerates the paper's Table 6. Run: cargo run --release -p bench --bin table6
fn main() {
    print!("{}", bench::tables::table6());
}
