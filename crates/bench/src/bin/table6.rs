//! Regenerates the paper's Table 6.
//!
//! Run: `cargo run --release -p bench --bin table6 [-- --backend code|direct]`
//!
//! With `--backend code` every measured column is re-derived from
//! assembled Thumb-16 machine code.

use m0plus::Backend;

fn main() {
    print!("{}", bench::tables::table6_with(backend_from_args()));
}

fn backend_from_args() -> Backend {
    bench::backend_from_args(std::env::args().skip(1))
}
