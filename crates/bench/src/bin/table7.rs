//! Regenerates the paper's Table 7. Run: cargo run --release -p bench --bin table7
fn main() {
    print!("{}", bench::tables::table7());
}
