//! Verification campaign driver: secret-independence + differential.
//!
//! Runs the two engines of the `verify` crate back to back:
//!
//! 1. the **leakage campaign** — every registered crypto kernel traced
//!    on pairs of random secret inputs, with a per-kernel verdict
//!    (`independent` / `documented-exception` / `LEAK`) across the PC,
//!    address and cycle trace classes;
//! 2. the **differential harness** — seeded random field elements,
//!    scalars and wire frames through every execution tier, with
//!    cross-tier agreement counters and a decoder error taxonomy.
//!
//! Usage:
//!   verify_campaign [--smoke] [--seed N] [--shards N] [--target NAME]
//!
//! `--target NAME` runs both engines under a [`m0plus::target`]
//! registry entry (default `cortex-m0plus`). Leakage verdicts and
//! cross-tier agreement are target-invariant; only the costs the
//! traces record move with the model.
//!
//! `--smoke` is the bounded CI configuration (run twice and diffed
//! byte-for-byte by ci.sh). `--shards N` splits the differential case
//! list into N windows run on up to `available_parallelism()` threads;
//! per-case PRNG substreams and the canonical merge keep the report
//! byte-identical for any shard count (ci.sh diffs `--shards 1`
//! against `--shards 4`). The default is the full campaign: ≥ 1000
//! differential cases per tier pair. Output is fully deterministic for
//! a given configuration. Exit status is non-zero if any kernel leaks
//! outside its documented allowance or any tier pair disagrees.

use bench::shard;
use verify::{differential, leakage, DiffConfig, LeakageConfig};

fn main() {
    let mut smoke = false;
    let mut seed: Option<u64> = None;
    let mut target: Option<&'static m0plus::TargetSpec> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let shards = shard::shards_from_args(&argv);
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().expect("--seed requires a value");
                seed = Some(v.parse().expect("--seed takes an integer"));
            }
            "--target" => {
                let v = args.next().expect("--target requires a name");
                target = Some(m0plus::target::by_name(v).unwrap_or_else(|| {
                    let known: Vec<&str> = m0plus::target::registry()
                        .iter()
                        .map(|t| t.name())
                        .collect();
                    panic!("unknown target {v:?}: expected one of {known:?}")
                }));
            }
            "--shards" => {
                args.next(); // value consumed by shards_from_args
            }
            other if other.starts_with("--shards=") => {}
            other => panic!(
                "unknown argument {other:?}: expected --smoke | --seed N | --shards N | --target NAME"
            ),
        }
    }

    let mut leak_cfg = if smoke {
        LeakageConfig::smoke()
    } else {
        LeakageConfig::full()
    };
    let mut diff_cfg = if smoke {
        DiffConfig::smoke()
    } else {
        DiffConfig::full()
    };
    if let Some(s) = seed {
        leak_cfg.seed = s;
        diff_cfg.seed = s;
    }
    if let Some(t) = target {
        leak_cfg.target = t;
        diff_cfg.target = t;
    }

    println!("== secret-independence campaign ==");
    println!(
        "seed {:#x}, {} pairs per field kernel, {} per point kernel",
        leak_cfg.seed, leak_cfg.cheap_pairs, leak_cfg.expensive_pairs
    );
    let verdicts = leakage::run_campaign(&leak_cfg);
    let mut leaks = 0;
    for v in &verdicts {
        println!("{}", v.render());
        if !v.ok() {
            leaks += 1;
        }
    }
    let independent = verdicts
        .iter()
        .filter(|v| v.verdict() == "independent")
        .count();
    println!(
        "{} kernels checked: {} independent, {} documented exceptions, {} LEAKS",
        verdicts.len(),
        independent,
        verdicts.len() - independent - leaks,
        leaks
    );

    println!();
    println!("== cross-tier differential harness ==");
    let parts = shard::run_shards(
        differential::total_cases(&diff_cfg),
        shards,
        shard::default_workers(),
        |_, window| differential::run_window(&diff_cfg, window),
    );
    let report = differential::merge(&diff_cfg, parts);
    print!("{}", report.render());

    if leaks > 0 || !report.ok() {
        println!("VERDICT: FAIL");
        std::process::exit(1);
    }
    println!("VERDICT: PASS");
}
