//! Regenerates the paper's Table 4. Run: cargo run --release -p bench --bin table4
fn main() {
    print!("{}", bench::tables::table4());
}
