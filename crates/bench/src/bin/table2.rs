//! Regenerates the paper's Table 2. Run: cargo run --release -p bench --bin table2
fn main() {
    print!("{}", bench::tables::table2());
}
