//! Fault-injection campaign driver.
//!
//! Samples N faults per target kernel (instruction skip, register bit
//! flip, memory bit flip), replays each through the recorded-program
//! backend, and reports detection / silent-corruption rates for the
//! unhardened, recompute-only, and fully hardened profiles, followed
//! by the measured overhead of every countermeasure.
//!
//! Usage:
//!   fault_campaign [--smoke] [--seed N] [--runs N]
//!
//! `--smoke` pins seed 7 and 24 runs/kernel — the bounded CI
//! configuration (run twice and diffed byte-for-byte by ci.sh).
//! Defaults: seed 7, 200 runs/kernel.

use bench::campaign::{measure_overheads, render_campaign, render_overheads, run_campaign};

fn main() {
    let mut seed = 7u64;
    let mut runs = 200usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                seed = 7;
                runs = 24;
            }
            "--seed" => {
                let v = args.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed takes an integer");
            }
            "--runs" => {
                let v = args.next().expect("--runs requires a value");
                runs = v.parse().expect("--runs takes an integer");
            }
            other => panic!("unknown argument {other:?}: expected --smoke | --seed N | --runs N"),
        }
    }

    let report = run_campaign(&bench::campaign::CampaignConfig {
        seed,
        runs_per_kernel: runs,
    });
    print!("{}", render_campaign(&report));
    println!();
    print!("{}", render_overheads(&measure_overheads()));
}
