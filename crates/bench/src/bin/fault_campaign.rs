//! Fault-injection campaign driver.
//!
//! Samples N faults per target kernel (instruction skip, register bit
//! flip, memory bit flip), replays each through the recorded-program
//! backend, and reports detection / silent-corruption rates for the
//! unhardened, recompute-only, and fully hardened profiles, followed
//! by the measured overhead of every countermeasure.
//!
//! Usage:
//!   fault_campaign [--smoke] [--seed N] [--runs N] [--shards N] [--target NAME]
//!
//! `--smoke` pins seed 7 and 24 runs/kernel — the bounded CI
//! configuration (run twice and diffed byte-for-byte by ci.sh).
//! `--target NAME` prices every replay under a [`m0plus::target`]
//! registry entry (default `cortex-m0plus`; fault verdicts are
//! target-invariant but the overhead costs move with the model).
//! `--shards N` splits each kernel's case list into N windows run on
//! up to `available_parallelism()` threads; per-case PRNG substreams
//! and canonical-order merging make the report byte-identical for any
//! shard count (ci.sh diffs `--shards 1` against `--shards 4`).
//! Defaults: seed 7, 200 runs/kernel, 1 shard.

use bench::campaign::{measure_overheads, render_campaign, render_overheads, run_campaign_sharded};
use bench::shard;

fn main() {
    let mut seed = 7u64;
    let mut runs = 200usize;
    let mut target = m0plus::target::default_target();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let shards = shard::shards_from_args(&argv);
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                seed = 7;
                runs = 24;
            }
            "--seed" => {
                let v = args.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed takes an integer");
            }
            "--runs" => {
                let v = args.next().expect("--runs requires a value");
                runs = v.parse().expect("--runs takes an integer");
            }
            "--target" => {
                let v = args.next().expect("--target requires a name");
                target = m0plus::target::by_name(v).unwrap_or_else(|| {
                    let known: Vec<&str> = m0plus::target::registry()
                        .iter()
                        .map(|t| t.name())
                        .collect();
                    panic!("unknown target {v:?}: expected one of {known:?}")
                });
            }
            "--shards" => {
                args.next(); // value consumed by shards_from_args
            }
            other if other.starts_with("--shards=") => {}
            other => panic!(
                "unknown argument {other:?}: expected --smoke | --seed N | --runs N | --shards N | --target NAME"
            ),
        }
    }

    let report = run_campaign_sharded(
        &bench::campaign::CampaignConfig::new(seed, runs).with_target(target),
        shards,
        shard::default_workers(),
    );
    print!("{}", render_campaign(&report));
    println!();
    print!("{}", render_overheads(&measure_overheads()));
}
