//! Service-plane overload experiment driver.
//!
//! Usage:
//!   service [--smoke | --overload] [--target NAME] [--seed N]
//!           [--ticks N] [--load-permille N] [--adversarial N]
//!           [--clients N]
//!
//! `--smoke` is the bounded CI configuration at a sustainable 800‰
//! load; `--overload` drives the plane at 2× its cycle capacity with a
//! quarter of the frames adversarial (the graceful-degradation gate);
//! the default is the full experiment EXPERIMENTS.md records.
//! `--target NAME` prices and executes under a [`m0plus::target`]
//! registry entry (default `cortex-m0plus`).
//!
//! The rendered report is deterministic in (configuration, seed) —
//! ci.sh runs the smoke and overload configurations twice each and
//! byte-diffs the output. Wall-clock throughput is host-dependent and
//! printed only outside `--smoke`/`--overload`.

use bench::traffic::{self, TrafficConfig};

fn main() {
    let mut smoke = false;
    let mut overload = false;
    let mut target = m0plus::target::default_target();
    let mut seed: Option<u64> = None;
    let mut ticks: Option<u64> = None;
    let mut load: Option<u64> = None;
    let mut adversarial: Option<u64> = None;
    let mut clients: Option<u32> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .parse()
                .unwrap_or_else(|_| panic!("{name} takes an integer"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--overload" => overload = true,
            "--seed" => seed = Some(num("--seed")),
            "--ticks" => ticks = Some(num("--ticks")),
            "--load-permille" => load = Some(num("--load-permille")),
            "--adversarial" => adversarial = Some(num("--adversarial")),
            "--clients" => clients = Some(num("--clients") as u32),
            "--target" => {
                let v = args.next().expect("--target requires a name");
                target = m0plus::target::by_name(v).unwrap_or_else(|| {
                    let known: Vec<&str> = m0plus::target::registry()
                        .iter()
                        .map(|t| t.name())
                        .collect();
                    panic!("unknown target {v:?}: expected one of {known:?}")
                });
            }
            other => panic!(
                "unknown argument {other:?}: expected --smoke | --overload | --target NAME | \
                 --seed N | --ticks N | --load-permille N | --adversarial N | --clients N"
            ),
        }
    }

    let mut cfg = if overload {
        TrafficConfig::overload(target)
    } else if smoke {
        TrafficConfig::smoke(target)
    } else {
        TrafficConfig::full(target)
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = ticks {
        cfg.ticks = t;
    }
    if let Some(l) = load {
        cfg.load_permille = l;
    }
    if let Some(a) = adversarial {
        cfg.adversarial_permille = a;
    }
    if let Some(c) = clients {
        cfg.clients = c;
    }

    let report = traffic::run(&cfg);
    print!("{}", traffic::render(&report));

    // The deterministic gates, re-asserted on every run.
    assert!(report.counters.accounted(0), "accounting identity violated");
    println!(
        "\nGATE: service accounting balanced ({} submitted = {} typed outcomes)",
        report.counters.submitted,
        report.counters.terminal()
    );
    assert!(
        report.quote_exact,
        "quote drifted from canonical measurement"
    );
    println!(
        "GATE: quotes bit-identical to canonical measurement on {}",
        cfg.target.name()
    );
    if overload || cfg.load_permille >= 1500 {
        let typed = report.counters.shed
            + report.counters.busy_rejected
            + report.counters.overload_rejected
            + report.counters.quota_rejected;
        assert!(report.counters.completed > 0, "overload starved the plane");
        assert!(typed > 0, "overload never triggered typed backpressure");
        assert!(report.counters.max_level >= 1, "ladder never engaged");
        println!(
            "GATE: overload survivable ({} completed, {} typed rejections, max level {})",
            report.counters.completed, typed, report.counters.max_level
        );
    }
    if !smoke && !overload {
        // Host-dependent; excluded from the byte-diffed smoke output.
        println!("wall-clock: {:.0} completed ops/s", report.wall_ops_per_sec);
    }
}
