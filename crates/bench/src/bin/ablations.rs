//! Ablation studies of the paper's design choices (DESIGN.md §4):
//!
//! 1. **register budget** — how many accumulator words must be pinned
//!    before the LD-fixed idea pays off (the paper picks 9, the most
//!    the M0+ can spare);
//! 2. **window width** — the wTNAF w for kP (precomputation charged,
//!    paper picks 4) and kG (offline table, paper picks 6);
//! 3. **energy-model sensitivity** — does the binary-vs-prime energy
//!    argument survive a flat per-instruction energy model?
//!
//! Run: `cargo run --release -p bench --bin ablations`

use bench::workloads;
use gf2m::counted;
use gf2m::modeled::Tier;
use koblitz::modeled::ModeledMul;
use m0plus::EnergyModel;

fn main() {
    register_budget();
    window_width();
    energy_sensitivity();
}

fn register_budget() {
    println!("=== Ablation 1: register budget for LD with fixed registers ===");
    println!("(counted tier, main loop only; paper uses 9 registers = 2968 est. cycles)\n");
    println!("registers  mem ops   est. cycles   vs plain LD");
    let a = workloads::element(41);
    let b = workloads::element(42);
    let base = counted::mul_ld_fixed_with_registers(a, b, 0).main.cycles() as f64;
    for regs in 0..=16 {
        let p = counted::mul_ld_fixed_with_registers(a, b, regs);
        println!(
            "{:>9}  {:>7}   {:>11}   -{:.1}%",
            regs,
            p.main.memory_ops(),
            p.main.cycles(),
            (1.0 - p.main.cycles() as f64 / base) * 100.0
        );
    }
    println!("\nThe curve flattens: the hot centre words (v6..v8) buy the most; beyond");
    println!("~11 registers the remaining words are touched once per iteration.\n");
}

fn window_width() {
    println!("=== Ablation 2: wTNAF window width ===");
    println!("(modeled asm tier; kP charges the table online, kG amortises it offline)\n");
    println!("w    kP cycles     kG-style cycles (offline table)");
    let k = workloads::scalar(77);
    let g = koblitz::generator();
    for w in 2..=6u32 {
        let mut online = ModeledMul::new(Tier::Asm);
        let kp = online.run(&g, &k, w, true).report.cycles;
        // Offline variant: suppress the precomputation charge by
        // measuring the same run and subtracting its precomputation
        // category (the table would live in flash).
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.run(&g, &k, w, true).report;
        let offline = run.cycles - run.category_cycles(m0plus::Category::TnafPrecomputation);
        println!("{w}    {kp:>9}     {offline:>9}");
    }
    println!("\nPaper's choices: w = 4 for kP (larger windows cost more online");
    println!("precomputation than their density saves) and w = 6 for kG (free table).\n");
}

fn energy_sensitivity() {
    println!("=== Ablation 3: energy-model sensitivity (Sec. 3.1 conclusion 2) ===\n");
    let k = workloads::scalar(99);
    for (name, model) in [
        ("paper Table-3 model", EnergyModel::cortex_m0plus()),
        ("flat 12.2 pJ/cycle", EnergyModel::uniform(12.2)),
    ] {
        let mut mm = ModeledMul::with_energy_model(Tier::Asm, model.clone());
        let kp = mm.kp(&koblitz::generator(), &k);
        println!(
            "{name:<22} kP: {:>8} cycles, {:>6.2} µJ, {:>6.1} µW",
            kp.report.cycles,
            kp.report.energy_uj(),
            kp.report.average_power_uw()
        );
    }
    println!("\nCycle counts are model-independent; the per-instruction energy spread");
    println!("shifts total energy by only a few percent for this XOR/LDR-heavy kernel.");
    println!("The decisive binary-vs-prime gap is the ~5x cycle difference (conclusion 1);");
    println!("conclusion 2 (cheaper instruction mix) adds the final ~1-2%.");
}
