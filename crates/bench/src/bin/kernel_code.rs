//! Emits the paper's assembly kernels as genuine Cortex-M0+ (Thumb)
//! machine code via the recording facility, reporting flash footprint
//! and the instruction mix — the code-size side of the fully-unrolled
//! design that the cycle tables don't show.
//!
//! Run: `cargo run --release -p bench --bin kernel_code`

use bench::workloads::element;
use gf2m::modeled::{ModeledField, Tier};
use m0plus::Instr;

fn main() {
    for (name, tier) in [("LD fixed registers (asm)", Tier::Asm), ("LD fixed registers (C)", Tier::C)] {
        let mut f = ModeledField::new(tier);
        let (a, b, z) = (f.alloc_init(element(1)), f.alloc_init(element(2)), f.alloc());
        f.machine_mut().start_recording();
        f.mul(z, a, b);
        let stream = f.machine_mut().take_recording();
        report(name, &stream);
    }
    // The squaring kernel.
    let mut f = ModeledField::new(Tier::Asm);
    let (a, z) = (f.alloc_init(element(3)), f.alloc());
    f.machine_mut().start_recording();
    f.sqr(z, a);
    let stream = f.machine_mut().take_recording();
    report("table squaring (asm)", &stream);
}

fn report(name: &str, stream: &[Instr]) {
    let bytes: usize = stream.iter().map(|i| i.size_bytes()).sum();
    let halfwords: Vec<u16> = stream.iter().flat_map(|i| i.encode()).collect();
    // Validate: the emitted code decodes back to the same stream.
    let mut offset = 0;
    let mut decoded = Vec::new();
    while offset < halfwords.len() {
        let (instr, used) = Instr::decode(&halfwords[offset..])
            .unwrap_or_else(|| panic!("undecodable emission at {offset}"));
        decoded.push(instr);
        offset += used;
    }
    assert_eq!(decoded, stream, "decode(encode(kernel)) identity");

    println!("=== {name} ===");
    println!("instructions executed: {}", stream.len());
    println!("machine code: {} halfwords = {} bytes of flash (single pass; the", halfwords.len(), bytes);
    println!("  real build reuses the 8x-unrolled j-blocks, so flash ~= one j-block x 8)");
    print!("first 12 instructions: ");
    println!();
    for i in &stream[..12.min(stream.len())] {
        let enc = i.encode();
        let hex: String = enc.iter().map(|h| format!("{h:04x} ")).collect();
        println!("  {hex:<12} {i}");
    }
    println!();
}
