//! Emits the paper's assembly kernels as genuine Cortex-M0+ (Thumb)
//! machine code via the recording facility and `m0plus::backend`'s
//! translator, reporting flash footprint and the leading disassembly —
//! the code-size side of the fully-unrolled design that the cycle
//! tables don't show.
//!
//! Run: `cargo run --release -p bench --bin kernel_code`

use bench::workloads::element;
use gf2m::modeled::{ModeledField, Tier};
use m0plus::{backend, Instr, Recording};

fn main() {
    for (name, tier) in [
        ("LD fixed registers (asm)", Tier::Asm),
        ("LD fixed registers (C)", Tier::C),
    ] {
        let mut f = ModeledField::new(tier);
        let (a, b, z) = (
            f.alloc_init(element(1)),
            f.alloc_init(element(2)),
            f.alloc(),
        );
        f.machine_mut().start_recording();
        f.mul(z, a, b);
        let recording = f.machine_mut().take_recording();
        report(name, &recording);
    }
    // The squaring kernel.
    let mut f = ModeledField::new(Tier::Asm);
    let (a, z) = (f.alloc_init(element(3)), f.alloc());
    f.machine_mut().start_recording();
    f.sqr(z, a);
    let recording = f.machine_mut().take_recording();
    report("table squaring (asm)", &recording);
}

fn report(name: &str, recording: &Recording) {
    let program = backend::translate(recording).expect("kernel assembles");
    println!("=== {name} ===");
    println!("instructions executed: {}", recording.steps.len());
    println!(
        "machine code: {} halfwords + {} literal-pool words = {} bytes of flash",
        program.code.len(),
        program.pool.len(),
        program.size_bytes()
    );
    println!("  (single linear pass; the real build reuses the 8x-unrolled j-blocks,");
    println!("  so resident flash ~= one j-block x 8)");
    println!("first 12 instructions:");
    let mut offset = 0;
    for _ in 0..12 {
        if offset >= program.code.len() {
            break;
        }
        let (instr, used) = Instr::decode(&program.code[offset..])
            .unwrap_or_else(|| panic!("undecodable emission at halfword {offset}"));
        let hex: String = program.code[offset..offset + used]
            .iter()
            .map(|h| format!("{h:04x} "))
            .collect();
        println!("  {hex:<12} {instr}");
        offset += used;
    }
    println!();
}
