//! Regenerates the paper's Table 3. Run: cargo run --release -p bench --bin table3
fn main() {
    print!("{}", bench::tables::table3());
}
