//! Regenerates the paper's Table 1. Run: cargo run --release -p bench --bin table1
fn main() {
    print!("{}", bench::tables::table1());
}
