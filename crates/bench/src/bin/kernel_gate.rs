//! Kernel-cycle regression gate: re-measures the headline field-kernel
//! cycle counts and the full point-multiplication totals
//! (`kp_this_work_asm`, `kg_this_work_asm`, `relic_style`) and
//! compares them, exactly, against the committed `BENCH_<n>.json`
//! baseline.
//!
//! The cost model is deterministic, so any drift in `mul_asm_cycles`,
//! `sqr_asm_cycles`, `inv_cycles` or a point-multiplication total is a
//! real modeling change and must arrive together with a regenerated
//! baseline — this gate turns a silent drift into a CI failure.
//!
//! Run: `cargo run --release -p bench --bin kernel_gate [-- <baseline.json>]`
//! (defaults to the highest `BENCH_<n>.json` at the repository root).

use bench::workloads;
use gf2m::modeled::Tier;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a grandparent")
        .to_path_buf()
}

/// Highest-numbered committed `BENCH_<n>.json`.
fn latest_baseline(root: &Path) -> PathBuf {
    let last = (1..)
        .take_while(|n| root.join(format!("BENCH_{n}.json")).exists())
        .last()
        .expect("at least BENCH_1.json is committed");
    root.join(format!("BENCH_{last}.json"))
}

/// Extracts `"key": <integer>` from the baseline without a JSON
/// dependency (the export format is line-oriented and deterministic).
fn extract_u64(doc: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let line = doc
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("baseline has no {key:?}"));
    let rest = line.split(&needle).nth(1).expect("split after needle");
    let digits: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|e| panic!("unparsable value for {key:?} in {line:?}: {e}"))
}

/// Extracts `"key": <integer>` scoped to the part of the baseline that
/// starts at `"section":` — the export has a fixed key order, so the
/// first `key` after the section header belongs to that section.
fn extract_section_u64(doc: &str, section: &str, key: &str) -> u64 {
    let header = format!("\"{section}\":");
    let start = doc
        .find(&header)
        .unwrap_or_else(|| panic!("baseline has no section {section:?}"));
    extract_u64(&doc[start..], key)
}

/// The gate reads individual keys, so it works across every schema
/// revision of the export family — but a document from some other
/// producer entirely would fail with confusing per-key panics, so the
/// family prefix is checked up front. Any `ecc233-bench/<n>` passes.
fn check_schema(doc: &str, path: &Path) {
    let schema = doc
        .lines()
        .find_map(|l| l.split("\"schema\": \"").nth(1))
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("{} has no \"schema\" field", path.display()));
    assert!(
        schema.starts_with("ecc233-bench/"),
        "{} is not an ecc233-bench export (schema {schema:?})",
        path.display()
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| latest_baseline(&repo_root()));
    let doc =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    check_schema(&doc, &path);

    let (sqr_asm, mul_asm, _, inv_asm) = workloads::kernel_cycles(Tier::Asm);
    let (_, _, _, inv_c) = workloads::kernel_cycles(Tier::C);
    let inv = inv_asm.min(inv_c);

    let mut failed = false;
    for (key, fresh) in [
        ("mul_asm_cycles", mul_asm),
        ("sqr_asm_cycles", sqr_asm),
        ("inv_cycles", inv),
    ] {
        let baseline = extract_u64(&doc, key);
        let ok = baseline == fresh;
        println!(
            "  {key:<16} baseline {baseline:>8}  fresh {fresh:>8}  {}",
            if ok { "ok" } else { "MISMATCH" }
        );
        failed |= !ok;
    }

    // Point-multiplication totals: the whole modeled stack (field
    // kernels, wTNAF recoding, the executor) folded into one number
    // each, so any drift anywhere surfaces here.
    let kp = workloads::average_kp(Tier::Asm, 1..3);
    let kg = workloads::average_kg(Tier::Asm, 1..3);
    let relic = workloads::average_relic(1..3);
    for (section, fresh) in [
        ("kp_this_work_asm", kp.report.cycles),
        ("kg_this_work_asm", kg.report.cycles),
        ("relic_style", relic.report.cycles),
    ] {
        let baseline = extract_section_u64(&doc, section, "cycles");
        let ok = baseline == fresh;
        println!(
            "  {section:<16} baseline {baseline:>8}  fresh {fresh:>8}  {}",
            if ok { "ok" } else { "MISMATCH" }
        );
        failed |= !ok;
    }

    // Schema 6 (ecc233-bench/6) adds the bitsliced block. Its wall
    // clocks are host-dependent, but the dispatch crossover is a
    // deterministic constant: moving it without regenerating the
    // baseline is the same kind of silent drift as a cycle change.
    // Older baselines simply lack the block and skip the check.
    if doc.contains("\"bitsliced\":") {
        let baseline = extract_section_u64(&doc, "bitsliced", "crossover");
        let fresh = gf2m::bitsliced::CROSSOVER as u64;
        let ok = baseline == fresh;
        println!(
            "  {:<16} baseline {baseline:>8}  fresh {fresh:>8}  {}",
            "crossover",
            if ok { "ok" } else { "MISMATCH" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "kernel cycle drift vs {} — regenerate the baseline with export_json if intended",
            path.display()
        );
        std::process::exit(1);
    }
    println!("kernel gate: all cycle counts match {}", path.display());
}
