//! Regenerates every table and figure in one run (the record that
//! EXPERIMENTS.md captures). Run: cargo run --release -p bench --bin all
fn main() {
    for section in [
        bench::tables::headline(),
        bench::tables::table1(),
        bench::tables::table2(),
        bench::tables::table3(),
        bench::tables::model_analysis(),
        bench::tables::table4(),
        bench::tables::table5(),
        bench::tables::table6(),
        bench::tables::table7(),
        bench::tables::figure1(),
        bench::tables::cross_targets(),
    ] {
        println!("{section}");
    }
}
