//! The fault-injection campaign: sampled glitches against recorded
//! field kernels, classified against hardened and unhardened
//! countermeasure profiles, plus the measured cost of every
//! countermeasure.
//!
//! # Methodology
//!
//! Each target kernel is run once on the direct tier with the machine
//! recording, giving a concrete Thumb-16 instruction stream and the
//! pre-run machine image. The campaign then replays that stream N
//! times through [`m0plus::fault::replay`], each time with one sampled
//! [`FaultPlan`] (instruction skip, register bit flip, or memory bit
//! flip at a uniform trace index). Replays are classified:
//!
//! * **aborted** — the executor raised an [`m0plus::ExecError`] (the
//!   model's HardFault, e.g. a corrupted base register walking out of
//!   RAM). The node detects these for free.
//! * **benign** — the replay completed and the kernel result equals
//!   the fault-free result.
//! * **altered** — the replay completed with a wrong result. This is
//!   the dangerous class; per countermeasure profile it splits into
//!   *detected* and *silent*.
//!
//! Detection is evaluated host-side with predicates provably
//! equivalent to the charged in-machine checks (the modeled kernels
//! are verified bit-for-bit against the portable field arithmetic, so
//! "recompute and compare" in-machine computes exactly the portable
//! product): the *recompute* profile flags a result that differs from
//! the operation applied to the (possibly faulted) inputs as they are
//! in RAM after the run; the *full* profile adds the redundant
//! input-copy compare, flagging inputs that no longer match their
//! pre-run values. Memory-flip sampling excludes the squaring table's
//! word range ([`gf2m::modeled::ModeledField::rom_words`]): that table
//! models flash ROM, and an in-machine recompute would reuse a
//! corrupted copy, so host-side detection there would over-claim.
//!
//! Countermeasure *overhead* is measured separately, on clean machines
//! running the actual charged checks ([`ModeledField::mul_checked`],
//! [`koblitz::modeled::ModeledMul::kp_hardened`], …) so the reported
//! cycles/energy/flash come from executed instruction streams, not
//! estimates.

use gf2m::modeled::{FeSlot, ModeledField, Tier};
use gf2m::Fe;
use koblitz::modeled::{Hardening, ModeledMul};
use m0plus::fault::{FaultKind, FaultPlan, RecordedKernel};
use m0plus::{Backend, Machine};
use prng::SplitMix64;
use std::fmt::Write as _;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Seed for the fault sampler (the whole campaign is a pure
    /// function of this seed, the target and the code).
    pub seed: u64,
    /// Sampled faults per target kernel.
    pub runs_per_kernel: usize,
    /// The core the kernels are recorded and replayed on (fault
    /// *verdicts* are architectural and thus target-invariant; trace
    /// lengths and replay costs are not).
    pub target: &'static m0plus::TargetSpec,
}

impl CampaignConfig {
    /// A campaign on the default target (`cortex-m0plus`).
    pub fn new(seed: u64, runs_per_kernel: usize) -> CampaignConfig {
        CampaignConfig {
            seed,
            runs_per_kernel,
            target: m0plus::target::default_target(),
        }
    }

    /// The same campaign priced under another registry target.
    pub fn with_target(mut self, target: &'static m0plus::TargetSpec) -> CampaignConfig {
        self.target = target;
        self
    }
}

/// The field operation a target kernel computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Mul,
    Sqr,
    Inv,
    Add,
}

/// One campaign target: a named kernel on a tier.
struct Target {
    name: &'static str,
    tier: Tier,
    tier_label: &'static str,
    op: Op,
}

/// The five kernels the campaign perturbs: both multiplier tiers, the
/// squaring and inversion kernels, and a support kernel.
fn targets() -> Vec<Target> {
    vec![
        Target {
            name: "mul_asm",
            tier: Tier::Asm,
            tier_label: "asm",
            op: Op::Mul,
        },
        Target {
            name: "sqr_asm",
            tier: Tier::Asm,
            tier_label: "asm",
            op: Op::Sqr,
        },
        Target {
            name: "mul_ld_fixed_c",
            tier: Tier::C,
            tier_label: "c",
            op: Op::Mul,
        },
        Target {
            name: "inv_eea_c",
            tier: Tier::Asm,
            tier_label: "c",
            op: Op::Inv,
        },
        Target {
            name: "fe_add",
            tier: Tier::Asm,
            tier_label: "asm",
            op: Op::Add,
        },
    ]
}

/// Per-kernel campaign outcome counters.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name (matches the flash report keys).
    pub name: &'static str,
    /// Implementation tier label.
    pub tier: &'static str,
    /// Instructions in the recorded trace.
    pub trace_len: u64,
    /// Faults sampled.
    pub sampled: usize,
    /// Sampled instruction skips / register flips / memory flips.
    pub skip_faults: usize,
    /// See [`KernelStats::skip_faults`].
    pub reg_faults: usize,
    /// See [`KernelStats::skip_faults`].
    pub mem_faults: usize,
    /// Replays that aborted with a clean executor error.
    pub aborted: usize,
    /// Replays whose result matched the fault-free run.
    pub benign: usize,
    /// Replays that completed with a wrong result.
    pub altered: usize,
    /// Altered results the recompute-and-compare profile catches.
    pub detected_recompute: usize,
    /// Altered results the full profile (recompute + input-copy
    /// compare) catches.
    pub detected_full: usize,
}

impl KernelStats {
    /// Detection rate of the recompute profile over altered results
    /// (1.0 when no fault altered a result).
    pub fn rate_recompute(&self) -> f64 {
        if self.altered == 0 {
            1.0
        } else {
            self.detected_recompute as f64 / self.altered as f64
        }
    }

    /// Detection rate of the full hardened profile over altered
    /// results.
    pub fn rate_full(&self) -> f64 {
        if self.altered == 0 {
            1.0
        } else {
            self.detected_full as f64 / self.altered as f64
        }
    }

    /// Altered results the unhardened profile lets through silently —
    /// all of them, as a fraction of sampled faults.
    pub fn silent_unhardened(&self) -> f64 {
        self.altered as f64 / self.sampled.max(1) as f64
    }

    /// Silent corruptions of the full profile, as a fraction of
    /// sampled faults.
    pub fn silent_full(&self) -> f64 {
        (self.altered - self.detected_full) as f64 / self.sampled.max(1) as f64
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the sampler ran with.
    pub seed: u64,
    /// Faults per kernel.
    pub runs_per_kernel: usize,
    /// Registry name of the target the kernels ran on.
    pub target: &'static str,
    /// Per-kernel outcome counters, in fixed target order.
    pub kernels: Vec<KernelStats>,
}

impl CampaignReport {
    /// Detection rate of the full profile across all kernels.
    pub fn overall_rate_full(&self) -> f64 {
        let altered: usize = self.kernels.iter().map(|k| k.altered).sum();
        let detected: usize = self.kernels.iter().map(|k| k.detected_full).sum();
        if altered == 0 {
            1.0
        } else {
            detected as f64 / altered as f64
        }
    }
}

/// A recorded target kernel plus everything needed to judge a replay.
struct PreparedTarget {
    stats_name: &'static str,
    tier_label: &'static str,
    op: Op,
    kernel: RecordedKernel,
    regions: Vec<std::ops::Range<u32>>,
    a: FeSlot,
    b: FeSlot,
    z: FeSlot,
    a0: Fe,
    b0: Fe,
    expected: Fe,
}

fn load_fe(machine: &Machine, slot: FeSlot) -> Fe {
    let words = machine.read_slice(slot.0, 8);
    Fe::from_words_reduced(words.try_into().expect("8 words"))
}

/// Records one target kernel on the direct tier.
fn prepare(target: &Target, spec: &'static m0plus::TargetSpec) -> PreparedTarget {
    let mut f = ModeledField::with_target(target.tier, spec);
    let a0 = crate::workloads::element(1);
    let b0 = crate::workloads::element(2);
    let a = f.alloc_init(a0);
    let b = f.alloc_init(b0);
    let z = f.alloc();
    let rom = f.rom_words();
    let pre = f.machine().clone();
    let regions = vec![0..rom.start, rom.end..pre.allocated_words()];

    f.machine_mut().start_recording();
    match target.op {
        Op::Mul => f.mul(z, a, b),
        Op::Sqr => f.sqr(z, a),
        Op::Inv => f.inv(z, a),
        Op::Add => f.add(z, a, b),
    }
    let recording = f.machine_mut().take_recording();
    let program = m0plus::backend::translate(&recording).expect("recorded trace assembles");
    let expected = f.load(z);

    PreparedTarget {
        stats_name: target.name,
        tier_label: target.tier_label,
        op: target.op,
        kernel: RecordedKernel::new(pre, program, recording),
        regions,
        a,
        b,
        z,
        a0,
        b0,
        expected,
    }
}

/// Whether the (possibly faulted) inputs and output are coherent under
/// the kernel's operation — what an in-machine recompute-and-compare
/// countermeasure observes.
fn recompute_coherent(op: Op, af: Fe, bf: Fe, zf: Fe) -> bool {
    match op {
        Op::Mul => zf == af * bf,
        Op::Sqr => zf == af.square(),
        Op::Inv => match af.invert() {
            Some(inv) => zf == inv,
            None => false, // inverting zero: always flagged
        },
        Op::Add => zf == af + bf,
    }
}

/// Outcome counters accumulated by one shard window of one kernel's
/// case list; summed in window order into [`KernelStats`].
#[derive(Debug, Default, Clone, Copy)]
struct PartialStats {
    skip_faults: usize,
    reg_faults: usize,
    mem_faults: usize,
    aborted: usize,
    benign: usize,
    altered: usize,
    detected_recompute: usize,
    detected_full: usize,
}

/// Replays and classifies the cases of one shard window. Each case's
/// fault is drawn from its own PRNG substream keyed by (seed, kernel,
/// case index), so any worker computes case `c` without replaying
/// `0..c` — the foundation of shard-count-invariant reports.
fn run_cases(
    seed: u64,
    kernel: u64,
    t: &PreparedTarget,
    window: std::ops::Range<usize>,
) -> PartialStats {
    let mut p = PartialStats::default();
    for case in window {
        let mut rng = SplitMix64::substream(seed, kernel, case as u64);
        let plan = FaultPlan::sample(&mut rng, t.kernel.trace_len(), &t.regions);
        match plan.kind {
            FaultKind::SkipInstruction => p.skip_faults += 1,
            FaultKind::RegisterBitFlip { .. } => p.reg_faults += 1,
            FaultKind::MemoryBitFlip { .. } => p.mem_faults += 1,
        }
        let run = t.kernel.replay(Some(&plan));
        if run.aborted() {
            p.aborted += 1;
            continue;
        }
        let zf = load_fe(&run.machine, t.z);
        if zf == t.expected {
            p.benign += 1;
            continue;
        }
        p.altered += 1;
        let af = load_fe(&run.machine, t.a);
        let bf = match t.op {
            Op::Sqr | Op::Inv => af, // unary: b unused
            _ => load_fe(&run.machine, t.b),
        };
        let recompute_detects = !recompute_coherent(t.op, af, bf, zf);
        let inputs_detect = af != t.a0
            || match t.op {
                Op::Sqr | Op::Inv => false,
                _ => bf != t.b0,
            };
        if recompute_detects {
            p.detected_recompute += 1;
        }
        if recompute_detects || inputs_detect {
            p.detected_full += 1;
        }
    }
    p
}

/// Runs the full campaign: N sampled faults per kernel, deterministic
/// in `cfg.seed`. Single shard, calling thread only — byte-identical
/// to [`run_campaign_sharded`] at any shard/worker count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_sharded(cfg, 1, 1)
}

/// [`run_campaign`] with each kernel's case list split into `shards`
/// contiguous windows executed on up to `workers` threads (see
/// [`crate::shard`]). Per-case PRNG substreams make every case a pure
/// function of its index, and the window counters are merged in
/// canonical case order, so the report — down to the rendered bytes —
/// is identical for any shard and worker count.
pub fn run_campaign_sharded(cfg: &CampaignConfig, shards: usize, workers: usize) -> CampaignReport {
    let kernels = targets()
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let t = prepare(target, cfg.target);
            let partials =
                crate::shard::run_shards(cfg.runs_per_kernel, shards, workers, |_, w| {
                    run_cases(cfg.seed, i as u64, &t, w)
                });
            let mut stats = KernelStats {
                name: t.stats_name,
                tier: t.tier_label,
                trace_len: t.kernel.trace_len(),
                sampled: cfg.runs_per_kernel,
                skip_faults: 0,
                reg_faults: 0,
                mem_faults: 0,
                aborted: 0,
                benign: 0,
                altered: 0,
                detected_recompute: 0,
                detected_full: 0,
            };
            for p in partials {
                stats.skip_faults += p.skip_faults;
                stats.reg_faults += p.reg_faults;
                stats.mem_faults += p.mem_faults;
                stats.aborted += p.aborted;
                stats.benign += p.benign;
                stats.altered += p.altered;
                stats.detected_recompute += p.detected_recompute;
                stats.detected_full += p.detected_full;
            }
            stats
        })
        .collect();
    CampaignReport {
        seed: cfg.seed,
        runs_per_kernel: cfg.runs_per_kernel,
        target: cfg.target.name(),
        kernels,
    }
}

/// Measured cost of one countermeasure.
#[derive(Debug, Clone)]
pub struct CountermeasureOverhead {
    /// Countermeasure name (stable identifier for the JSON export).
    pub name: &'static str,
    /// Extra cycles per protected operation.
    pub cycles: u64,
    /// Extra energy per protected operation, picojoules.
    pub energy_pj: f64,
    /// Extra flash for kernels the countermeasure links in that the
    /// unprotected stack does not use (shared kernels count once).
    pub flash_bytes: usize,
    /// How the number was obtained.
    pub note: &'static str,
}

/// Measures every countermeasure's overhead on clean machines.
///
/// Field-level checks run on the code backend so the marginal *flash*
/// of the compare/copy kernels is measured too; point-level checks run
/// [`ModeledMul::kp_hardened`] with each toggle against the same
/// scalar, on the direct tier (cycle/energy identical across backends,
/// as the tier tests assert).
pub fn measure_overheads() -> Vec<CountermeasureOverhead> {
    let mut out = Vec::new();

    // ---- field level, code backend (for flash numbers) ----
    let mut f = ModeledField::new_with_backend(Tier::Asm, Backend::Code);
    let a = f.alloc_init(crate::workloads::element(1));
    let b = f.alloc_init(crate::workloads::element(2));
    let (z, s1, s2, c1, c2) = (f.alloc(), f.alloc(), f.alloc(), f.alloc(), f.alloc());

    let delta = |f: &mut ModeledField, op: &mut dyn FnMut(&mut ModeledField)| {
        let snap = f.machine().snapshot();
        op(f);
        let r = f.machine().report_since(&snap);
        (r.cycles, r.energy_pj)
    };

    let (mul_plain_c, mul_plain_e) = delta(&mut f, &mut |f| f.mul(z, a, b));
    let (mul_chk_c, mul_chk_e) = delta(&mut f, &mut |f| {
        assert!(f.mul_checked(z, a, b, s1));
    });
    let (sqr_plain_c, sqr_plain_e) = delta(&mut f, &mut |f| f.sqr(z, a));
    let (sqr_chk_c, sqr_chk_e) = delta(&mut f, &mut |f| {
        assert!(f.sqr_checked(z, a, s1));
    });
    let (inv_plain_c, inv_plain_e) = delta(&mut f, &mut |f| f.inv(z, a));
    let (inv_chk_c, inv_chk_e) = delta(&mut f, &mut |f| {
        assert!(f.inv_checked(z, a, s1, s2));
    });
    // Redundant input copies + post-run compares (the "full" profile's
    // extra work for a binary kernel).
    let (input_c, input_e) = delta(&mut f, &mut |f| {
        f.copy(c1, a);
        f.copy(c2, b);
        assert!(f.equal(c1, a));
        assert!(f.equal(c2, b));
    });

    let flash = f.flash_report();
    let fp_bytes = |name: &str| flash.get(name).map(|fp| fp.flash_bytes).unwrap_or(0);
    let equal_flash = fp_bytes("fe_equal");
    let copy_flash = fp_bytes("fe_copy");
    let setc_flash = fp_bytes("fe_set_const");

    out.push(CountermeasureOverhead {
        name: "fe_mul_recompute",
        cycles: mul_chk_c - mul_plain_c,
        energy_pj: mul_chk_e - mul_plain_e,
        flash_bytes: equal_flash,
        note: "second multiplication + compare, measured",
    });
    out.push(CountermeasureOverhead {
        name: "fe_sqr_recompute",
        cycles: sqr_chk_c - sqr_plain_c,
        energy_pj: sqr_chk_e - sqr_plain_e,
        flash_bytes: equal_flash,
        note: "second squaring + compare, measured",
    });
    out.push(CountermeasureOverhead {
        name: "fe_inv_multiply_back",
        cycles: inv_chk_c - inv_plain_c,
        energy_pj: inv_chk_e - inv_plain_e,
        flash_bytes: equal_flash + setc_flash,
        note: "z*x == 1 check, measured (cheaper than re-inverting)",
    });
    out.push(CountermeasureOverhead {
        name: "fe_input_copy_compare",
        cycles: input_c,
        energy_pj: input_e,
        flash_bytes: copy_flash + equal_flash,
        note: "two redundant copies + compares, measured",
    });

    // ---- point level: kp_hardened toggles vs the unhardened kp ----
    let g = koblitz::generator();
    let k = crate::workloads::scalar(5);
    let kp_with = |h: Hardening| {
        let mut mm = ModeledMul::new(Tier::Asm);
        let run = mm.kp_hardened(&g, &k, h).expect("valid inputs pass");
        (run.report.cycles, run.report.energy_pj)
    };
    let (off_c, off_e) = kp_with(Hardening::OFF);
    for (name, h, flash_bytes, note) in [
        (
            "kp_validate_base_point",
            Hardening {
                validate_base: true,
                ..Hardening::OFF
            },
            equal_flash,
            "charged on-curve check of the base point, measured",
        ),
        (
            "kp_reject_infinity_result",
            Hardening {
                reject_infinity: true,
                ..Hardening::OFF
            },
            0,
            "charged Z == 0 test (is-zero kernel already linked)",
        ),
        (
            "kp_check_result_on_curve",
            Hardening {
                check_result: true,
                ..Hardening::OFF
            },
            equal_flash,
            "charged on-curve check of the result, measured",
        ),
    ] {
        let (c, e) = kp_with(h);
        out.push(CountermeasureOverhead {
            name,
            cycles: c - off_c,
            energy_pj: e - off_e,
            flash_bytes,
            note,
        });
    }

    // ---- protocol level ----
    // verify-after-sign re-runs a verification: about one kP-class
    // double multiplication. Report the modeled kP as the proxy.
    out.push(CountermeasureOverhead {
        name: "ecdsa_verify_after_sign",
        cycles: off_c,
        energy_pj: off_e,
        flash_bytes: 0,
        note: "proxy: one modeled kP (verify is one double-multiply)",
    });
    // Subgroup validation of a received point uses the binary
    // reference multiplication n*P — roughly the doubling ladder,
    // costlier than the wTNAF kP. Report the modeled kP as a lower
    // bound.
    out.push(CountermeasureOverhead {
        name: "wire_order_validation",
        cycles: off_c,
        energy_pj: off_e,
        flash_bytes: 0,
        note: "proxy lower bound: one kP-class multiplication (n*P)",
    });
    out
}

/// Renders the campaign as the fixed-width table the CI gate diffs.
/// Fully deterministic for a given seed.
pub fn render_campaign(report: &CampaignReport) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(
        w,
        "fault campaign: seed {}, {} faults/kernel, target {} (skip / reg-flip / mem-flip)",
        report.seed, report.runs_per_kernel, report.target
    )
    .unwrap();
    writeln!(
        w,
        "{:<16} {:>6} {:>7} {:>7} {:>7} {:>7} | {:>10} {:>10} {:>10}",
        "kernel",
        "trace",
        "faults",
        "abort",
        "benign",
        "altered",
        "unhardened",
        "recompute",
        "full"
    )
    .unwrap();
    for k in &report.kernels {
        writeln!(
            w,
            "{:<16} {:>6} {:>7} {:>7} {:>7} {:>7} | {:>9.1}% {:>9.1}% {:>9.1}%",
            k.name,
            k.trace_len,
            k.sampled,
            k.aborted,
            k.benign,
            k.altered,
            0.0,
            100.0 * k.rate_recompute(),
            100.0 * k.rate_full(),
        )
        .unwrap();
    }
    writeln!(
        w,
        "detection rate over altered results; unhardened detects nothing by construction"
    )
    .unwrap();
    writeln!(
        w,
        "overall full-profile detection: {:.1}%",
        100.0 * report.overall_rate_full()
    )
    .unwrap();
    out
}

/// Renders the countermeasure overhead table (cycles, energy, flash).
pub fn render_overheads(overheads: &[CountermeasureOverhead]) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "countermeasure overhead (per protected operation)").unwrap();
    writeln!(
        w,
        "{:<26} {:>10} {:>12} {:>11}  note",
        "countermeasure", "cycles", "energy_pj", "flash_bytes"
    )
    .unwrap();
    for o in overheads {
        writeln!(
            w,
            "{:<26} {:>10} {:>12.1} {:>11}  {}",
            o.name, o.cycles, o.energy_pj, o.flash_bytes, o.note
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_full_profile_detects_everything() {
        let cfg = CampaignConfig::new(7, 4);
        let r1 = run_campaign(&cfg);
        let r2 = run_campaign(&cfg);
        assert_eq!(render_campaign(&r1), render_campaign(&r2));
        for k in &r1.kernels {
            assert_eq!(k.sampled, 4);
            assert_eq!(k.aborted + k.benign + k.altered, k.sampled);
            assert_eq!(
                k.skip_faults + k.reg_faults + k.mem_faults,
                k.sampled,
                "{}: every fault has a kind",
                k.name
            );
        }
        // The acceptance bar: hardened profiles detect at least 90% of
        // faults that alter a result. The full profile is in fact
        // complete: an altered result implies either incoherent
        // (input, output) or changed inputs.
        assert!(r1.overall_rate_full() >= 0.9);
        for k in &r1.kernels {
            assert!(
                k.detected_full == k.altered,
                "{}: full profile missed {} of {} altered results",
                k.name,
                k.altered - k.detected_full,
                k.altered
            );
        }
    }

    #[test]
    fn report_is_invariant_under_shard_and_worker_count() {
        let cfg = CampaignConfig::new(11, 9);
        let baseline = render_campaign(&run_campaign_sharded(&cfg, 1, 1));
        for (shards, workers) in [(2, 1), (4, 2), (4, 4), (9, 3)] {
            assert_eq!(
                render_campaign(&run_campaign_sharded(&cfg, shards, workers)),
                baseline,
                "shards = {shards}, workers = {workers}"
            );
        }
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let a = run_campaign(&CampaignConfig::new(1, 6));
        let b = run_campaign(&CampaignConfig::new(2, 6));
        assert_ne!(render_campaign(&a), render_campaign(&b));
    }
}
