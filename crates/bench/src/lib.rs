//! Benchmark harness for the DAC'14 reproduction.
//!
//! [`tables`] regenerates every table and figure of the paper from live
//! runs on the cost model, printing paper values next to measured ones.
//! Each `src/bin/tableN.rs` binary prints one of them; `src/bin/all.rs`
//! prints the full evaluation (and is what EXPERIMENTS.md records).
//! Self-contained wall-clock micro-benchmarks of the portable tier live
//! in `benches/` (plain timing mains — no external harness, so the
//! workspace builds offline).
//!
//! The table regenerators that report modeled numbers accept
//! `--backend code|direct` (see [`backend_from_args`]): `code` replays
//! every kernel from assembled Thumb-16 machine code through
//! `m0plus::backend` instead of the call-per-instruction direct path.

pub mod campaign;
pub mod shard;
pub mod tables;
pub mod throughput;
pub mod timing;
pub mod traffic;
pub mod workloads;

use m0plus::Backend;

/// Parses `--backend code|direct` (or `--backend=code`) from an
/// argument iterator, defaulting to [`Backend::Direct`].
///
/// # Panics
///
/// Panics with a usage message on an unknown backend name or a
/// trailing `--backend` with no value.
pub fn backend_from_args(args: impl Iterator<Item = String>) -> Backend {
    let mut args = args.peekable();
    let mut backend = Backend::Direct;
    while let Some(arg) = args.next() {
        let value = if arg == "--backend" {
            args.next()
                .unwrap_or_else(|| panic!("--backend requires a value: code|direct"))
        } else if let Some(v) = arg.strip_prefix("--backend=") {
            v.to_string()
        } else {
            continue;
        };
        backend = Backend::parse(&value)
            .unwrap_or_else(|| panic!("unknown backend {value:?}: expected code|direct"));
    }
    backend
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Backend {
        backend_from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn backend_flag_parses() {
        assert_eq!(parse(&[]), Backend::Direct);
        assert_eq!(parse(&["--backend", "code"]), Backend::Code);
        assert_eq!(parse(&["--backend=direct"]), Backend::Direct);
        assert_eq!(parse(&["other", "--backend", "CODE"]), Backend::Code);
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn backend_flag_rejects_garbage() {
        parse(&["--backend", "jit"]);
    }
}
