//! Benchmark harness for the DAC'14 reproduction.
//!
//! [`tables`] regenerates every table and figure of the paper from live
//! runs on the cost model, printing paper values next to measured ones.
//! Each `src/bin/tableN.rs` binary prints one of them; `src/bin/all.rs`
//! prints the full evaluation (and is what EXPERIMENTS.md records).
//! Criterion micro-benchmarks of the portable tier live in `benches/`.

pub mod tables;
pub mod workloads;
