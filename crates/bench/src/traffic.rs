//! Deterministic open-loop overload experiment for the service plane.
//!
//! A seeded SplitMix64 traffic generator drives [`service::ServicePlane`]
//! with a configurable arrival load expressed in permille of the
//! plane's per-tick cycle budget: 800‰ is a sustainable service mix,
//! 2000‰ is the 2× overload the CI smoke survives. The mix exercises
//! every admission path on purpose:
//!
//! * all four operations with a skew towards verify (the gateway mix);
//! * a recurring pool of keys, so the wTNAF table cache sees hits as
//!   well as churn;
//! * deliberately corrupted-but-well-formed signatures (the
//!   verify-false `Done([0])` path);
//! * deliberate replays of already-admitted sequence numbers;
//! * an adversarial fraction of frames put through the same seeded
//!   mutation operator the robustness suites use (truncate / extend /
//!   bit-flip / substitute).
//!
//! Everything but wall-clock throughput is deterministic in
//! (seed, config, target): the CI gate runs the experiment twice and
//! byte-diffs the rendered report.

use m0plus::TargetSpec;
use prng::SplitMix64;
use protocols::{Keypair, SigningKey};
use service::cost::CostTable;
use service::frame::{encode_request, Op, OpRequest, Priority, Request, Response, Status};
use service::plane::{Counters, PlaneConfig, ServicePlane};
use std::collections::{BTreeMap, HashMap};

/// PRNG domain for per-tick arrival substreams.
const DOMAIN_ARRIVALS: u64 = 0x7ea_0001;
/// PRNG domain for the quote-error scalar samples.
const DOMAIN_SAMPLES: u64 = 0x7ea_0002;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Cost-model target the plane prices and executes under.
    pub target: &'static TargetSpec,
    /// Generator seed.
    pub seed: u64,
    /// Ticks of open-loop arrivals (the drain afterwards is extra).
    pub ticks: u64,
    /// Arrival load in permille of the plane's per-tick cycle budget.
    pub load_permille: u64,
    /// Fraction of frames run through the mutation operator, permille.
    pub adversarial_permille: u64,
    /// Distinct client identities generating traffic.
    pub clients: u32,
    /// Worker threads for the plane's batch drain (0 = host default;
    /// results are worker-invariant).
    pub workers: usize,
}

impl TrafficConfig {
    /// Bounded CI configuration: sustainable load, every path still
    /// exercised.
    pub fn smoke(target: &'static TargetSpec) -> TrafficConfig {
        TrafficConfig {
            target,
            seed: 0xdac1_4007,
            ticks: 30,
            load_permille: 800,
            adversarial_permille: 150,
            clients: 6,
            workers: 0,
        }
    }

    /// The CI overload configuration: 2× the plane's capacity with a
    /// quarter of the frames adversarial.
    pub fn overload(target: &'static TargetSpec) -> TrafficConfig {
        TrafficConfig {
            target,
            seed: 0xdac1_4008,
            ticks: 40,
            load_permille: 2000,
            adversarial_permille: 250,
            clients: 6,
            workers: 0,
        }
    }

    /// The full experiment EXPERIMENTS.md records.
    pub fn full(target: &'static TargetSpec) -> TrafficConfig {
        TrafficConfig {
            target,
            seed: 0xdac1_4007,
            ticks: 200,
            load_permille: 1200,
            adversarial_permille: 150,
            clients: 12,
            workers: 0,
        }
    }
}

/// One quote-vs-actual sample: the canonical flat price against a
/// fresh modeled run on a scalar drawn from the request stream.
#[derive(Debug, Clone, Copy)]
pub struct QuoteErrorSample {
    /// Which kernel ("kG" or "kP").
    pub kernel: &'static str,
    /// The canonical quoted cycles.
    pub quoted: u64,
    /// The measured cycles for this sample's scalar.
    pub actual: u64,
}

impl QuoteErrorSample {
    /// Absolute quote error in permille of the actual cost.
    pub fn err_permille(&self) -> u64 {
        self.quoted.abs_diff(self.actual) * 1000 / self.actual
    }
}

/// Everything the experiment measures. All fields except
/// [`TrafficReport::wall_ops_per_sec`] are deterministic in the config.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// The configuration that produced this report.
    pub config: TrafficConfig,
    /// The plane's cumulative counters after the full drain.
    pub counters: Counters,
    /// Response histogram by status name (immediate + tick responses).
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Verify requests that completed with a false verdict (the
    /// corrupted-signature fraction surfacing as data, not errors).
    pub verify_false: u64,
    /// Extra ticks needed to drain the backlog after arrivals stopped.
    pub drain_ticks: u64,
    /// Median completion latency, in ticks, of admitted work.
    pub p50_latency_ticks: u64,
    /// 99th-percentile completion latency, in ticks.
    pub p99_latency_ticks: u64,
    /// Quote-vs-actual cycle samples (the digit-pattern variance the
    /// flat canonical quote trades for O(1) pricing).
    pub quote_errors: Vec<QuoteErrorSample>,
    /// Whether re-measuring the canonical cost table reproduced the
    /// quotes bit-identically (the gas-meter acceptance gate).
    pub quote_exact: bool,
    /// wTNAF table-cache counters over the run.
    pub cache: koblitz::cache::CacheStats,
    /// Completed operations per wall-clock second (host-dependent; not
    /// part of the deterministic render).
    pub wall_ops_per_sec: f64,
}

/// The recurring key pool: a handful of identities the mix reuses so
/// the table cache sees recurring base points.
struct KeyPool {
    signers: Vec<SigningKey>,
    peers: Vec<Keypair>,
    msgs: Vec<Vec<u8>>,
    /// sigs[i][j] = signature of msgs[j] under signers[i].
    sigs: Vec<Vec<protocols::Signature>>,
}

impl KeyPool {
    fn new(size: usize) -> KeyPool {
        let signers: Vec<SigningKey> = (0..size)
            .map(|i| SigningKey::generate(format!("traffic pool signer {i}").as_bytes()))
            .collect();
        let peers = (0..size)
            .map(|i| Keypair::generate(format!("traffic pool peer {i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..4)
            .map(|j| format!("pool telemetry frame {j}").into_bytes())
            .collect();
        let sigs = signers
            .iter()
            .map(|s| msgs.iter().map(|m| s.sign(m)).collect())
            .collect();
        KeyPool {
            signers,
            peers,
            msgs,
            sigs,
        }
    }
}

/// The seeded mutation operator shared (by construction) with the
/// robustness suites: truncate, extend, flip bits or substitute a byte.
fn mutate(template: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = template.to_vec();
    match rng.below(5) {
        0 => {
            let len = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(len);
        }
        1 => {
            for _ in 0..rng.below(16) + 1 {
                buf.push(rng.next_u32() as u8);
            }
        }
        2 if !buf.is_empty() => {
            for _ in 0..rng.below(4) + 1 {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
        }
        3 if !buf.is_empty() => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = rng.next_u32() as u8;
        }
        _ => {}
    }
    buf
}

/// Draws one request from the mix. Returns the frame bytes and the
/// cycles its operation is quoted at (for the open-loop load budget).
fn draw_request(
    rng: &mut SplitMix64,
    cfg: &TrafficConfig,
    costs: &CostTable,
    pool: &KeyPool,
    now: u64,
    next_seq: &mut HashMap<u32, u64>,
    last_admittable: &HashMap<u32, u64>,
) -> (Vec<u8>, u64) {
    let client = 1 + rng.below(cfg.clients as u64) as u32;
    let op = match rng.below(100) {
        0..=29 => Op::Sign,
        30..=69 => Op::Verify,
        70..=89 => Op::Ecdh,
        _ => Op::Ecies,
    };
    let priority = match rng.below(100) {
        0..=24 => Priority::Low,
        25..=84 => Priority::Normal,
        _ => Priority::High,
    };
    // ~2% deliberate replays of a sequence number the plane already
    // committed for this client; otherwise a fresh monotone number.
    let seq = if rng.ratio(1, 50) {
        last_admittable.get(&client).copied().unwrap_or(1)
    } else {
        let s = next_seq.entry(client).or_insert(1);
        let v = *s;
        *s += 1;
        v
    };
    let deadline = now + 2 + rng.below(6);
    let ki = rng.below(pool.signers.len() as u64) as usize;
    let mi = rng.below(pool.msgs.len() as u64) as usize;
    let op_req = match op {
        Op::Sign => OpRequest::Sign {
            msg: pool.msgs[mi].clone(),
        },
        Op::Verify => {
            // ~5% of verifies carry a signature over a *different*
            // pool message: well-formed, decodes, verifies false.
            let msg = if rng.ratio(1, 20) {
                pool.msgs[(mi + 1) % pool.msgs.len()].clone()
            } else {
                pool.msgs[mi].clone()
            };
            OpRequest::Verify {
                public: *pool.signers[ki].public(),
                sig: pool.sigs[ki][mi].clone(),
                msg,
            }
        }
        Op::Ecdh => OpRequest::Ecdh {
            peer: *pool.peers[ki].public(),
        },
        Op::Ecies => OpRequest::Ecies {
            recipient: *pool.peers[ki].public(),
            msg: pool.msgs[mi].clone(),
        },
    };
    let mut frame = encode_request(&Request {
        client,
        seq,
        priority,
        deadline,
        op: op_req,
    });
    if rng.ratio(cfg.adversarial_permille, 1000) {
        frame = mutate(&frame, rng);
    }
    (frame, costs.quote(op).cycles)
}

/// Runs the experiment: open-loop arrivals for `cfg.ticks` ticks, then
/// a full drain, then the quote-vs-actual sampling and the canonical
/// quote-exactness re-measurement.
pub fn run(cfg: &TrafficConfig) -> TrafficReport {
    let mut plane_cfg = PlaneConfig::for_target(cfg.target);
    plane_cfg.workers = cfg.workers;
    let mut plane = ServicePlane::new(plane_cfg.clone()).expect("valid default plane config");
    let costs = CostTable::shared(cfg.target);
    let pool = KeyPool::new(5);
    koblitz::cache::reset();

    let started = std::time::Instant::now();
    let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut verify_false = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut arrivals: HashMap<(u32, u64), u64> = HashMap::new();
    let mut next_seq: HashMap<u32, u64> = HashMap::new();
    let mut last_admitted: HashMap<u32, u64> = HashMap::new();

    let mut note = |resp: &Response,
                    arrivals: &mut HashMap<(u32, u64), u64>,
                    latencies: &mut Vec<u64>,
                    now: u64| {
        *outcomes.entry(resp.status.name()).or_insert(0) += 1;
        if let Status::Done(body) = &resp.status {
            if body == &[0u8] {
                verify_false += 1;
            }
        }
        if matches!(resp.status, Status::Done(_)) {
            if let Some(t0) = arrivals.remove(&(resp.client, resp.seq)) {
                latencies.push(now - t0);
            }
        }
    };

    for tick in 0..cfg.ticks {
        let mut rng = SplitMix64::substream(cfg.seed, DOMAIN_ARRIVALS, tick);
        let goal = cfg.load_permille * plane_cfg.capacity_cycles_per_tick / 1000;
        let mut issued = 0u64;
        while issued < goal {
            let (frame, quoted) = draw_request(
                &mut rng,
                cfg,
                costs,
                &pool,
                plane.now(),
                &mut next_seq,
                &last_admitted,
            );
            issued += quoted;
            let now = plane.now();
            match plane.submit(&frame) {
                None => {
                    // Admitted: remember the arrival for latency and
                    // the committed seq for the replay mix.
                    if let Ok(req) = service::frame::decode_request(&frame) {
                        arrivals.insert((req.client, req.seq), now);
                        last_admitted.insert(req.client, req.seq);
                    }
                }
                Some(resp) => note(&resp, &mut arrivals, &mut latencies, now),
            }
        }
        let now = plane.now();
        for resp in plane.tick() {
            note(&resp, &mut arrivals, &mut latencies, now);
        }
    }
    // Arrivals stop; drain the backlog to empty (deadlines bound this).
    let mut drain_ticks = 0u64;
    while plane.pending() > 0 {
        drain_ticks += 1;
        let now = plane.now();
        for resp in plane.tick() {
            note(&resp, &mut arrivals, &mut latencies, now);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    let counters = plane.counters();
    assert!(
        counters.accounted(0),
        "accounting identity violated after full drain"
    );

    latencies.sort_unstable();
    let pct = |q: usize| {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * q / 100]
        }
    };

    // Quote-vs-actual: fresh modeled runs on scalars from the request
    // stream (sign nonces) and from the generator (ECDH secrets).
    let mut quote_errors = Vec::new();
    for (i, msg) in pool.msgs.iter().take(2).enumerate() {
        let nonce = pool.signers[i].derive_nonce(msg, 0);
        let mut mm =
            koblitz::modeled::ModeledMul::with_target(service::cost::COST_TIER, cfg.target);
        let run = mm.kg(&nonce.to_int());
        quote_errors.push(QuoteErrorSample {
            kernel: "kG",
            quoted: costs.kg.cycles,
            actual: run.report.cycles,
        });
    }
    let mut srng = SplitMix64::substream(cfg.seed, DOMAIN_SAMPLES, 0);
    for i in 0..2usize {
        let mut wide = [0u8; 40];
        srng.fill_bytes(&mut wide);
        let k = koblitz::Scalar::from_wide_bytes(&wide);
        let mut mm =
            koblitz::modeled::ModeledMul::with_target(service::cost::COST_TIER, cfg.target);
        let run = mm.kp(pool.peers[i].public(), &k.to_int());
        quote_errors.push(QuoteErrorSample {
            kernel: "kP",
            quoted: costs.kp.cycles,
            actual: run.report.cycles,
        });
    }

    // The gas-meter acceptance gate: re-measuring the canonical table
    // reproduces the quotes bit-identically.
    let remeasured = CostTable::measure(cfg.target);
    let quote_exact = remeasured.kg.cycles == costs.kg.cycles
        && remeasured.kp.cycles == costs.kp.cycles
        && remeasured.kg.energy_pj.to_bits() == costs.kg.energy_pj.to_bits()
        && remeasured.kp.energy_pj.to_bits() == costs.kp.energy_pj.to_bits();

    TrafficReport {
        config: cfg.clone(),
        counters,
        outcomes,
        verify_false,
        drain_ticks,
        p50_latency_ticks: pct(50),
        p99_latency_ticks: pct(99),
        quote_errors,
        quote_exact,
        cache: koblitz::cache::stats(),
        wall_ops_per_sec: if elapsed > 0.0 {
            counters.completed as f64 / elapsed
        } else {
            0.0
        },
    }
}

/// Renders the deterministic portion of the report (everything except
/// wall-clock throughput — byte-diffed by the CI double run).
pub fn render(report: &TrafficReport) -> String {
    let mut out = String::new();
    let c = &report.counters;
    let cfg = &report.config;
    out.push_str("== service-plane overload experiment ==\n");
    out.push_str(&format!(
        "target {}, seed {:#x}, {} ticks, load {}\u{2030} of capacity, adversarial {}\u{2030}, {} clients\n",
        cfg.target.name(),
        cfg.seed,
        cfg.ticks,
        cfg.load_permille,
        cfg.adversarial_permille,
        cfg.clients
    ));
    out.push_str(&format!(
        "submitted {}   admitted {}   completed {}   drain ticks {}\n",
        c.submitted, c.admitted, c.completed, report.drain_ticks
    ));
    out.push_str("outcomes:\n");
    for (name, n) in &report.outcomes {
        out.push_str(&format!("  {name:<12} {n}\n"));
    }
    out.push_str(&format!(
        "rejections: decode {}  replay {}  shed {}  quota {}  busy {}  overloaded {}  expired-on-arrival {}  timeouts {}\n",
        c.decode_errors,
        c.replays,
        c.shed,
        c.quota_rejected,
        c.busy_rejected,
        c.overload_rejected,
        c.expired_on_arrival,
        c.timeouts
    ));
    out.push_str(&format!(
        "degradation: max level {}  transitions {}  warms {}  client evictions {}\n",
        c.max_level, c.level_changes, c.warms, c.client_evictions
    ));
    out.push_str(&format!(
        "latency (ticks): p50 {}  p99 {}\n",
        report.p50_latency_ticks, report.p99_latency_ticks
    ));
    out.push_str(&format!(
        "executed: {} modeled cycles, {:.1} uJ modeled energy, verify-false {}\n",
        c.executed_cycles,
        c.executed_energy_pj / 1e6,
        report.verify_false
    ));
    out.push_str(&format!(
        "wTNAF cache: {} hits, {} misses, {} evictions, {} resident\n",
        report.cache.hits, report.cache.misses, report.cache.evictions, report.cache.entries
    ));
    out.push_str("quote-vs-actual (canonical flat quote vs sampled request scalars):\n");
    for s in &report.quote_errors {
        out.push_str(&format!(
            "  {}: quoted {}  actual {}  err {}\u{2030}\n",
            s.kernel,
            s.quoted,
            s.actual,
            s.err_permille()
        ));
    }
    out.push_str(&format!(
        "quotes bit-identical on re-measurement: {}\n",
        report.quote_exact
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_balanced() {
        let cfg = TrafficConfig {
            ticks: 15,
            ..TrafficConfig::smoke(m0plus::target::default_target())
        };
        let r1 = run(&cfg);
        let r2 = run(&cfg);
        assert_eq!(render(&r1), render(&r2), "double run must byte-match");
        assert!(r1.counters.accounted(0));
        assert!(r1.counters.completed > 0);
        assert!(r1.counters.decode_errors > 0, "adversarial mix missing");
        assert!(r1.quote_exact);
    }

    #[test]
    fn overload_run_survives_and_sheds() {
        let cfg = TrafficConfig {
            ticks: 8,
            ..TrafficConfig::overload(m0plus::target::default_target())
        };
        let r = run(&cfg);
        assert!(r.counters.accounted(0));
        assert!(r.counters.completed > 0, "overload must not starve");
        let typed_rejections =
            r.counters.shed + r.counters.busy_rejected + r.counters.overload_rejected;
        assert!(typed_rejections > 0, "2x load must trigger backpressure");
        assert!(r.counters.max_level >= 1, "ladder must engage");
    }
}
