//! Regenerators for every table and figure of the paper.
//!
//! Each function returns the formatted table as a string with the
//! paper's published values printed next to the values measured live on
//! the cost model, so `cargo run -p bench --bin all` is a one-shot
//! reproduction of the whole evaluation section.

use crate::workloads;
use ecc233::literature;
use ecc233::model;
use gf2m::counted;
use gf2m::formulas::Method;
use gf2m::modeled::{accumulator_residency, Residency, Tier};
use m0plus::{Backend, Category, EnergyModel, InstrClass, MeasurementRig, CLOCK_HZ};
use std::fmt::Write as _;

fn header(title: &str) -> String {
    let bar = "=".repeat(title.len());
    format!("{title}\n{bar}\n")
}

/// Table 1: the closed-form operation formulas, with this
/// reproduction's measured (counted-tier) operation counts beside them.
pub fn table1() -> String {
    let mut out = header(
        "Table 1. Estimated required operation formulas for field multiplication in F_2^233",
    );
    out += "Method                         Read          Write         XOR\n";
    out += "A: LD                          16n^2+23n     8n^2+30n      8n^2+30n-7\n";
    out += "B: LD rotating registers       8n^2+39n-8    46n           8n^2+38n-7\n";
    out += "C: LD fixed registers          8n^2+24n+1    31n+1         8n^2+30n-7\n";
    out += "Shifts: 42n-21 for all methods.\n\n";
    out += "Measured main-loop counts from the instrumented multipliers (n = 8;\nour accounting conventions, see gf2m::counted):\n";
    let a = workloads::element(11);
    let b = workloads::element(12);
    for (m, p) in counted::all_methods(a, b) {
        let t = p.main;
        writeln!(
            out,
            "{:<30} R={:<5} W={:<5} X={:<5} S={:<5}",
            m.label(),
            t.reads,
            t.writes,
            t.xors,
            t.shifts
        )
        .expect("write to string");
    }
    out
}

/// Table 2: formulas evaluated at n = 8 plus the paper's cycle estimate,
/// with measured counts and the derived improvement ratios.
pub fn table2() -> String {
    let mut out = header(
        "Table 2. Estimated required operations for field multiplication in F_2^233 (n = 8)",
    );
    out += "                                paper (formulas)                   measured (counted tier)\n";
    out += "Method                         Read  Write XOR   Shift Cycles | Read  Write XOR   Shift Cycles\n";
    let a = workloads::element(21);
    let b = workloads::element(22);
    let measured = counted::all_methods(a, b);
    for (m, p) in &measured {
        let f = m.op_counts(gf2m::N as u64);
        let t = p.main;
        writeln!(
            out,
            "{:<30} {:<5} {:<5} {:<5} {:<5} {:<6} | {:<5} {:<5} {:<5} {:<5} {:<6}",
            m.label(),
            f.reads,
            f.writes,
            f.xors,
            f.shifts,
            f.cycles(),
            t.reads,
            t.writes,
            t.xors,
            t.shifts,
            t.cycles()
        )
        .expect("write to string");
    }
    let fa = Method::A.op_counts(8).cycles() as f64;
    let fb = Method::B.op_counts(8).cycles() as f64;
    let fc = Method::C.op_counts(8).cycles() as f64;
    writeln!(
        out,
        "\nPaper claim: C is {:.0}% faster than B, {:.0}% faster than A (formulas: {:.1}%, {:.1}%).",
        15.0,
        40.0,
        (1.0 - fc / fb) * 100.0,
        (1.0 - fc / fa) * 100.0
    )
    .expect("write to string");
    let ca = measured[0].1.main.cycles() as f64;
    let cb = measured[1].1.main.cycles() as f64;
    let cc = measured[2].1.main.cycles() as f64;
    writeln!(
        out,
        "Measured:   C is {:.1}% faster than B, {:.1}% faster than A.",
        (1.0 - cc / cb) * 100.0,
        (1.0 - cc / ca) * 100.0
    )
    .expect("write to string");
    out
}

/// Table 3: per-instruction energy, re-derived by the simulated
/// measurement rig.
pub fn table3() -> String {
    let mut out = header("Table 3. The energy used per cycle for different instructions (48 MHz)");
    out +=
        "Instruction   paper [pJ]   rig (compensated) [pJ]   rig raw loop [pJ]   loop power [µW]\n";
    let rig = MeasurementRig::default();
    // The paper column is the registry's default target — the same
    // values `m0plus::energy::table3` declares once for the whole tree.
    let target = m0plus::target::default_target();
    let measured = [
        InstrClass::Ldr,
        InstrClass::Lsr,
        InstrClass::Mul,
        InstrClass::Lsl,
        InstrClass::Eor,
        InstrClass::Add,
    ];
    let paper = measured.map(|class| (class, m0plus::TargetModel::pj_per_cycle(target, class)));
    for (class, pj) in paper {
        let r = rig.measure(class);
        writeln!(
            out,
            "{:<13} {:<12.2} {:<24.2} {:<19.2} {:<10.1}",
            class.mnemonic(),
            pj,
            r.picojoules_per_cycle,
            r.raw_picojoules_per_cycle,
            r.raw_power_uw
        )
        .expect("write to string");
    }
    let spread = m0plus::energy::table3::ADD_PJ / m0plus::energy::table3::LDR_PJ;
    writeln!(
        out,
        "\nSpread ADD/LDR = {:.3} (paper: \"variation of up to 22.5%\"); ADD is the most\nenergy-hungry instruction, favouring XOR/shift-heavy binary-field arithmetic.",
        spread
    )
    .expect("write to string");
    out
}

/// Table 4: point-multiplication timings and energies — literature rows
/// quoted, Cortex-M0+ rows regenerated live from the cost model.
pub fn table4() -> String {
    let mut out = header("Table 4. Timings for point multiplications");
    out += "Platform            Implementation        Curve            [ms]      [µJ]     src\n";
    out += "--- literature rows (quoted) ---\n";
    for r in literature::table4_literature() {
        writeln!(
            out,
            "{:<19} {:<21} {:<16} {:<9.1} {:<8.1} {}{}",
            r.platform,
            r.author,
            r.curve,
            r.time_ms,
            r.energy_uj,
            r.kind.marker(),
            r.source.marker()
        )
        .expect("write to string");
    }
    out +=
        "--- Cortex-M0+ rows: paper (measured on hardware) vs this reproduction (cost model) ---\n";
    let relic = workloads::average_relic(1..3);
    let kg = workloads::average_kg(Tier::Asm, 1..3);
    let kp = workloads::average_kp(Tier::Asm, 1..3);
    let rows = [
        ("Relic kG", 115.7, 69.48, &relic),
        ("Relic kP", 117.1, 70.26, &relic),
        ("This work kG", 39.70, 20.63, &kg),
        ("This work kP", 59.18, 34.16, &kp),
    ];
    for (name, paper_ms, paper_uj, run) in rows {
        writeln!(
            out,
            "{:<19} {:<21} {:<16} {:<9.2} {:<8.2} (paper: {:.2} ms / {:.2} µJ; power {:.1} µW)",
            "Cortex-M0+",
            name,
            "sect233k1",
            run.report.time_ms(),
            run.report.energy_uj(),
            paper_ms,
            paper_uj,
            run.report.average_power_uw()
        )
        .expect("write to string");
    }
    let ratio_kp = relic.report.cycles as f64 / kp.report.cycles as f64;
    let ratio_kg = relic.report.cycles as f64 / kg.report.cycles as f64;
    writeln!(
        out,
        "\nSpeedup vs RELIC: kP ×{:.2} (paper 1.99), kG ×{:.2} (paper 2.98).",
        ratio_kp, ratio_kg
    )
    .expect("write to string");
    let best_other = literature::table4_literature()
        .iter()
        .map(|r| r.energy_uj)
        .fold(f64::INFINITY, f64::min);
    writeln!(
        out,
        "Energy headline: best literature row {:.1} µJ / our kP {:.2} µJ = ×{:.1} (paper claims ≥ {}).",
        best_other,
        kp.report.energy_uj(),
        best_other / kp.report.energy_uj(),
        literature::HEADLINE_ENERGY_FACTOR
    )
    .expect("write to string");

    out += "\nModel estimates for the prime-curve baselines on this core (hand-scheduled\nkernels; the Micro ECC rows above are C, hence slower):\n";
    for (name, limbs) in [("secp192r1", 6usize), ("secp224r1", 7), ("secp256r1", 8)] {
        let cycles = primefield::modeled::point_mul_cycles(limbs);
        let ms = cycles as f64 / CLOCK_HZ as f64 * 1e3;
        let mix = primefield::modeled::field_mul_mix(limbs);
        let epc = model::mix_energy_per_cycle(&mix, &EnergyModel::cortex_m0plus());
        writeln!(
            out,
            "{:<19} {:<21} {:<16} {:<9.1} {:<8.1}",
            "Cortex-M0+ (model)",
            "prime double-and-add",
            name,
            ms,
            cycles as f64 * epc * 1e-6
        )
        .expect("write to string");
    }
    out += "Every prime estimate costs 3-9x our sect233k1 kP — the Sec. 3.1 selection\nargument, visible inside Table 4 itself.\n";
    out
}

/// Table 5: modular multiplication/squaring cycles across platforms;
/// our row measured live.
pub fn table5() -> String {
    table5_with(Backend::Direct)
}

/// [`table5`] on an explicit execution backend. Under
/// [`Backend::Code`] the reproduction row is re-measured from assembled
/// Thumb-16 machine code and the kernel flash footprints are appended.
pub fn table5_with(backend: Backend) -> String {
    let mut out = header("Table 5. Average cycle times for modular multiplication and squaring");
    if backend == Backend::Code {
        out += "(reproduction rows re-executed from assembled Thumb-16 via the code backend)\n";
    }
    out += "Author                       Platform        word  Sqr    Mul    Field\n";
    for r in literature::table5_literature() {
        writeln!(
            out,
            "{:<28} {:<15} {:<5} {:<6} {:<6} {}",
            r.author,
            r.platform,
            r.word_bits,
            r.sqr_cycles.map_or("-".into(), |c| c.to_string()),
            r.mul_cycles,
            r.field
        )
        .expect("write to string");
    }
    let (sqr, mul_main, _lut, _inv) = workloads::kernel_cycles_with(Tier::Asm, backend);
    writeln!(
        out,
        "{:<28} {:<15} {:<5} {:<6} {:<6} F_2^233   (paper: Sqr 395 / Mul 3672)",
        "This work (reproduction)", "Cortex-M0+", 32, sqr, mul_main
    )
    .expect("write to string");
    if backend == Backend::Code {
        out += "\nKernel flash footprints (assembled fragments, per-kernel maxima over a\nfull kP + kG; the linearised trace — a looped build shares its j-blocks):\n";
        for (name, fp) in workloads::kernel_flash(Tier::Asm) {
            writeln!(
                out,
                "  {:<18} {:>8} B  ({} instrs, {} calls)",
                name, fp.flash_bytes, fp.instructions, fp.calls
            )
            .expect("write to string");
        }
    }

    out += "\nOut-of-sample check: the generalised op-count model vs the cited rows\n";
    out += "(first-order; register pressure and compilers differ per platform):\n";
    out += "platform      field     predicted   cited   ratio\n";
    for r in ecc233::crossplatform::predict_table5() {
        writeln!(
            out,
            "{:<13} F_2^{:<5} {:>9} {:>7}   {:>5.2}  ({})",
            r.platform,
            r.m_bits,
            r.predicted,
            r.cited,
            r.ratio(),
            r.source
        )
        .expect("write to string");
    }
    out
}

/// Table 6: field-arithmetic cycles, C vs assembly, plus kP / kG totals.
pub fn table6() -> String {
    table6_with(Backend::Direct)
}

/// [`table6`] on an explicit execution backend ([`Backend::Code`]
/// re-derives every measured number from assembled Thumb-16).
pub fn table6_with(backend: Backend) -> String {
    let mut out = header("Table 6. Average cycle times for field arithmetic algorithms in F_2^233");
    if backend == Backend::Code {
        out += "(measured columns re-executed from assembled Thumb-16 via the code backend)\n";
    }
    let (sqr_c, mul_c, _lut_c, inv_c) = workloads::kernel_cycles_with(Tier::C, backend);
    let (sqr_asm, mul_asm, _lut_asm, _) = workloads::kernel_cycles_with(Tier::Asm, backend);
    let rot_c = workloads::rotating_c_cycles();
    let kp_c = workloads::average_kp_with(Tier::C, backend, 5..6);
    let kg_c = workloads::average_kg_with(Tier::C, backend, 5..6);
    let kp_asm = workloads::average_kp_with(Tier::Asm, backend, 5..6);
    let kg_asm = workloads::average_kg_with(Tier::Asm, backend, 5..6);
    out += "Operation                     C (paper)      C (ours)    Asm (paper)   Asm (ours)\n";
    type Table6Row = (&'static str, Option<u64>, u64, Option<u64>, Option<u64>);
    let rows: [Table6Row; 6] = [
        (
            "Modular squaring",
            Some(419),
            sqr_c,
            Some(395),
            Some(sqr_asm),
        ),
        ("Inversion", Some(141_916), inv_c, None, None),
        ("LD rotating registers", Some(5_592), rot_c, None, None),
        (
            "LD fixed registers",
            Some(5_964),
            mul_c,
            Some(3_672),
            Some(mul_asm),
        ),
        (
            "kP",
            Some(3_516_295),
            kp_c.report.cycles,
            Some(2_761_640),
            Some(kp_asm.report.cycles),
        ),
        (
            "kG",
            Some(2_494_757),
            kg_c.report.cycles,
            Some(1_864_470),
            Some(kg_asm.report.cycles),
        ),
    ];
    for (name, paper_c, ours_c, paper_asm, ours_asm) in rows {
        writeln!(
            out,
            "{:<29} {:<14} {:<11} {:<13} {:<10}",
            name,
            paper_c.map_or("-".into(), |v| v.to_string()),
            ours_c,
            paper_asm.map_or("-".into(), |v| v.to_string()),
            ours_asm.map_or("-".into(), |v| v.to_string()),
        )
        .expect("write to string");
    }
    out += "\n(The paper's kP/kG column under \"C language\" is 3 516 295 / 2 494 757; its\nassembly column is 2 761 640 / 1 864 470 before the final-table adjustments of\nTable 7; our totals include the full Table 7 pipeline.)\n";
    out
}

/// Table 7: accumulated cycles per operation category for kP and kG.
pub fn table7() -> String {
    let mut out = header("Table 7. Total accumulated timings per operation (assembly tier)");
    let kp = workloads::average_kp(Tier::Asm, 7..9);
    let kg = workloads::average_kg(Tier::Asm, 7..9);
    let paper_kp: [(Category, u64); 7] = [
        (Category::TnafRepresentation, 178_135),
        (Category::TnafPrecomputation, 398_387),
        (Category::Multiply, 1_108_890),
        (Category::MultiplyPrecomputation, 249_750),
        (Category::Square, 362_379),
        (Category::Inversion, 139_936),
        (Category::Support, 377_350),
    ];
    let paper_kg: [(Category, u64); 7] = [
        (Category::TnafRepresentation, 185_926),
        (Category::TnafPrecomputation, 0),
        (Category::Multiply, 821_178),
        (Category::MultiplyPrecomputation, 184_950),
        (Category::Square, 342_294),
        (Category::Inversion, 139_656),
        (Category::Support, 376_392),
    ];
    out += "Operation                    kP paper    kP ours     kG paper    kG ours\n";
    for ((cat, pkp), (_, pkg)) in paper_kp.iter().zip(paper_kg.iter()) {
        writeln!(
            out,
            "{:<28} {:<11} {:<11} {:<11} {:<11}",
            cat.label(),
            pkp,
            kp.report.category_cycles(*cat),
            pkg,
            kg.report.category_cycles(*cat)
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "{:<28} {:<11} {:<11} {:<11} {:<11}",
        "Total", 2_814_827u64, kp.report.cycles, 1_864_470u64, kg.report.cycles
    )
    .expect("write to string");
    out
}

/// Figure 1: the LD-with-fixed-registers data flow, rendered from the
/// actual residency map of the assembly kernel.
pub fn figure1() -> String {
    let mut out =
        header("Figure 1. The proposed LD with fixed registers algorithm in F_2^m for n = 8");
    out += "Accumulator vector C (16 words); ## = word in a register, .. = word in memory:\n\n  ";
    for idx in 0..16 {
        out += &format!("C{idx:<2}");
        out += " ";
    }
    out += "\n  ";
    for idx in 0..16 {
        out += match accumulator_residency(idx) {
            Residency::LoRegister => "## ",
            Residency::HiRegister => "#h ",
            Residency::Memory => ".. ",
        };
        out += " ";
    }
    out += "\n\n";
    out += "  (## = lo register r1/r2/r3/r6, #h = hi register r8..r12, .. = stack frame)\n\n";
    out += "  LUT: T[u] = u(z)*y(z), 16 entries x 8 words, generated from y       [memory]\n";
    out += "  x:   scanned 4 bits at a time, nibble j of word k selects T[u]      [memory]\n\n";
    out += "  repeat j = 7 downto 0:\n";
    out += "      for k = 0..7:   u = nibble_j(x[k]);  C[k..k+8] ^= T[u]\n";
    out += "      if j > 0:       C <<= 4   (registers shift in place;\n";
    out += "                                 only the 7 memory words pay loads/stores)\n\n";
    // Count the memory traffic per k the residency map implies.
    let mut per_k = [0u32; 8];
    for (k, slot) in per_k.iter_mut().enumerate() {
        for l in 0..8 {
            if accumulator_residency(k + l) == Residency::Memory {
                *slot += 1;
            }
        }
    }
    out += "  memory-resident accumulator touches per k-step: ";
    for (k, n) in per_k.iter().enumerate() {
        out += &format!("k{k}:{n} ");
    }
    let total: u32 = per_k.iter().sum();
    writeln!(
        out,
        "\n  -> {total} of 64 row-accumulations per j touch memory; the other {} hit registers.",
        64 - total
    )
    .expect("write to string");
    out
}

/// The §3.1 model (not a numbered table in the paper, but the analysis
/// behind its curve choice).
pub fn model_analysis() -> String {
    let mut out = header("Sec. 3.1 model: matching a curve to the architecture");
    out += "Candidate                      mul[cyc]  pJ/cyc   kP est[cyc]  kP est[µJ]  power[µW]\n";
    let rows = model::evaluate_candidates();
    for r in &rows {
        writeln!(
            out,
            "{:<30} {:<9} {:<8.2} {:<12} {:<11.1} {:<9.1}",
            r.candidate.name,
            r.field_mul_cycles,
            r.energy_per_cycle_pj,
            r.point_mul_cycles,
            r.point_mul_energy_uj,
            r.average_power_uw()
        )
        .expect("write to string");
    }
    let c = model::conclusions(&rows);
    writeln!(
        out,
        "\nConclusion (1) Koblitz fastest at comparable security: {}\nConclusion (2) binary mix uses less energy/cycle:       {}",
        c.koblitz_is_fastest, c.binary_uses_less_power
    )
    .expect("write to string");
    out
}

/// Cross-target cost table (a model extrapolation, not a paper table):
/// the recorded field kernels re-costed under every `m0plus::target`
/// registry entry, plus a full kP actually executed under each target.
pub fn cross_targets() -> String {
    let mut out = header("Cross-target costs (cost-model extrapolation; not in the paper)");
    out += "Field kernels recorded once on the default core, re-costed per target\nfrom their per-class instruction counts (exact for a per-class model):\n\n";
    out += "target                  kernel      cycles       energy [nJ]\n";
    let mut last = "";
    for r in ecc233::crossplatform::recost_rows() {
        let shown = if r.target == last { "" } else { r.target };
        last = r.target;
        writeln!(
            out,
            "{:<23} {:<11} {:<12} {:<10.2}",
            shown,
            r.kernel,
            r.cycles,
            r.energy_pj * 1e-3
        )
        .expect("write to string");
    }
    out += "\nFull kP executed under each target model (assembly tier, one scalar):\n\n";
    out += "target                  kP cycles    kP [µJ]   kP [ms]   clock [MHz]\n";
    for spec in m0plus::target::registry() {
        let run = workloads::kp_under_target(Tier::Asm, spec, 1);
        writeln!(
            out,
            "{:<23} {:<12} {:<9.2} {:<9.2} {:<6}",
            spec.name(),
            run.report.cycles,
            run.report.energy_uj(),
            run.report.time_ms(),
            spec.clock_hz() / 1_000_000
        )
        .expect("write to string");
    }
    out += "\n(cortex-m0plus is the paper's platform and the bit-exact baseline; the\nother rows move only the per-class cycle/energy tables, so differences\nisolate architectural assumptions: branch cost on the M0's 3-stage\npipeline, a 32-cycle sequential multiplier, and an M3-class estimate.)\n";
    out
}

/// Headline summary (§4.2.2 and the abstract).
pub fn headline() -> String {
    let mut out = header("Headline results (abstract / Sec. 4.2)");
    let kg = workloads::average_kg(Tier::Asm, 11..13);
    let kp = workloads::average_kp(Tier::Asm, 11..13);
    writeln!(
        out,
        "kP: {} cycles, {:.2} ms @48 MHz, {:.2} µJ, {:.1} µW   (paper: 2 814 827 / 59.18 ms* / 34.16 µJ / 577.2 µW)",
        kp.report.cycles,
        kp.report.time_ms(),
        kp.report.energy_uj(),
        kp.report.average_power_uw()
    )
    .expect("write to string");
    writeln!(
        out,
        "kG: {} cycles, {:.2} ms @48 MHz, {:.2} µJ, {:.1} µW   (paper: 1 864 470 / 39.70 ms* / 20.63 µJ / 519.6 µW)",
        kg.report.cycles,
        kg.report.time_ms(),
        kg.report.energy_uj(),
        kg.report.average_power_uw()
    )
    .expect("write to string");
    writeln!(
        out,
        "(*the paper's ms figures in Table 4 correspond to its cycle counts at 48 MHz;\n  2 814 827 cycles = 58.6 ms, 1 864 470 = 38.8 ms)\n\nClock: {} MHz.",
        CLOCK_HZ / 1_000_000
    )
    .expect("write to string");
    out
}
