//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces the external Criterion dependency so the workspace builds
//! and benches offline. The method is the classic one: calibrate a
//! batch size to a target duration, run several batches, report the
//! *minimum* per-iteration time (the least-noise estimate — scheduler
//! and frequency noise only ever add time).
//!
//! The `benches/*.rs` targets are plain `main`s on this module
//! (`harness = false` in the manifest), run with `cargo bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-batch measurement window. Short enough to keep a full
/// workspace bench run in minutes; raise for tighter estimates.
const BATCH_TARGET: Duration = Duration::from_millis(120);
/// Batches per benchmark; the minimum over these is reported.
const BATCHES: usize = 5;

/// A named group of related benchmarks (mirrors the Criterion group
/// structure the output replaced, so result labels stay comparable).
pub struct Group {
    name: &'static str,
}

/// Starts a benchmark group, printing its header.
pub fn group(name: &'static str) -> Group {
    println!("\n{name}");
    Group { name }
}

impl Group {
    /// Measures `f`, printing nanoseconds per iteration.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Calibrate: grow the batch until it fills the target window.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= BATCH_TARGET {
                break;
            }
            // At least double; jump straight to the target if the
            // elapsed time is measurable.
            let scaled = if elapsed.as_nanos() > 1000 {
                (batch as u128 * BATCH_TARGET.as_nanos() / elapsed.as_nanos()) as u64 + 1
            } else {
                batch * 100
            };
            batch = scaled.max(batch * 2);
        }
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(per_iter);
        }
        println!("  {}/{name:<42} {}", self.name, format_ns(best));
    }
}

/// Measures a single unnamed benchmark (no group).
pub fn bench<T>(name: &'static str, f: impl FnMut() -> T) {
    println!();
    Group { name: "bench" }.bench(name, f);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>10.2} us/iter", ns / 1_000.0)
    } else {
        format!("{:>10.3} ms/iter", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("us"));
        assert!(format_ns(12_300_000.0).contains("ms"));
    }
}
