//! Deterministic work sharding for the campaign runners.
//!
//! A campaign is a list of independent cases (sampled faults, fuzz
//! seeds). [`windows`] splits the case index range into contiguous
//! shard windows and [`run_shards`] executes them on a bounded pool of
//! `std::thread` workers, returning the per-shard outputs **in shard
//! order** regardless of completion order. As long as each case's
//! outcome is a pure function of its index (per-case PRNG substreams —
//! see `prng::SplitMix64::substream`), merging the shard outputs in
//! window order yields a result that is byte-identical for any shard
//! and worker count; `ci.sh` diffs `--shards 1` against `--shards 4`
//! to hold the campaigns to that.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Worker count to use when the caller does not override it:
/// `std::thread::available_parallelism()`, with a fallback of 1 when
/// the platform cannot report it.
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits the case range `0..total` into `shards` contiguous windows
/// in index order; the first `total % shards` windows are one case
/// longer. Empty windows are kept (so shard indices are stable) and
/// `shards == 0` is treated as 1.
pub fn windows(total: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = total / shards;
    let extra = total % shards;
    let mut start = 0;
    (0..shards)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// Runs `work(shard_index, window)` for every window on at most
/// `workers` OS threads and returns the outputs **in shard order**.
///
/// Shards are handed out through a shared counter, so slow shards do
/// not serialise the rest; with `workers <= 1` everything runs inline
/// on the calling thread. Determinism is the caller's contract: `work`
/// must not observe anything but its own window.
///
/// # Panics
///
/// Propagates a panic from any shard worker.
pub fn run_shards<T: Send>(
    total: usize,
    shards: usize,
    workers: usize,
    work: impl Fn(usize, Range<usize>) -> T + Sync,
) -> Vec<T> {
    let wins = windows(total, shards);
    let n = wins.len();
    let threads = workers.clamp(1, n);
    if threads <= 1 {
        return wins
            .into_iter()
            .enumerate()
            .map(|(i, w)| work(i, w))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let wins = &wins;
    let work = &work;
    let mut collected: Vec<(usize, T)> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, work(i, wins[i].clone())));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Parses `--shards N` (or `--shards=N`) from an argument list,
/// defaulting to 1. Other arguments are ignored, so the campaign bins
/// can keep their own flag loops.
///
/// # Panics
///
/// Panics with a usage message on a missing or unparsable value.
pub fn shards_from_args(args: &[String]) -> usize {
    let mut shards = 1usize;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let value = if arg == "--shards" {
            it.next()
                .unwrap_or_else(|| panic!("--shards requires a value"))
                .clone()
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            v.to_string()
        } else {
            continue;
        };
        shards = value
            .parse()
            .unwrap_or_else(|e| panic!("unparsable --shards value {value:?}: {e}"));
        assert!(shards >= 1, "--shards must be at least 1");
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_the_range_contiguously() {
        for total in [0usize, 1, 5, 24, 100] {
            for shards in [1usize, 2, 3, 4, 7, 32] {
                let wins = windows(total, shards);
                assert_eq!(wins.len(), shards);
                let mut next = 0;
                for w in &wins {
                    assert_eq!(w.start, next);
                    next = w.end;
                }
                assert_eq!(next, total);
                let (min, max) = wins.iter().fold((usize::MAX, 0), |(lo, hi), w| {
                    (lo.min(w.len()), hi.max(w.len()))
                });
                assert!(max - min <= 1, "windows must be balanced");
            }
        }
    }

    #[test]
    fn run_shards_returns_outputs_in_shard_order_for_any_worker_count() {
        let expect: Vec<Vec<usize>> = windows(23, 5).into_iter().map(|w| w.collect()).collect();
        for workers in [1usize, 2, 4, 16] {
            let got = run_shards(23, 5, workers, |_, w| w.collect::<Vec<_>>());
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn shards_flag_parses() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(shards_from_args(&args(&[])), 1);
        assert_eq!(shards_from_args(&args(&["--smoke", "--shards", "4"])), 4);
        assert_eq!(shards_from_args(&args(&["--shards=2"])), 2);
    }

    #[test]
    #[should_panic(expected = "--shards requires a value")]
    fn shards_flag_rejects_missing_value() {
        shards_from_args(&["--shards".to_string()]);
    }
}
