//! Target-model golden tests.
//!
//! Pins the tentpole invariant of the target registry: the default
//! `cortex-m0plus` entry is *bit-identical* to the legacy hard-coded
//! cost model — checked both against a live default-path run
//! (`f64::to_bits` on the energy totals) and against the newest
//! committed `BENCH_<n>.json` baseline (exact cycles, exact rendered
//! energy). The cross-target checks then pin the direction every
//! non-default entry is allowed to move in.

use bench::workloads;
use gf2m::modeled::Tier;
use koblitz::modeled::ModeledMul;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a grandparent")
        .to_path_buf()
}

/// Highest-numbered committed `BENCH_<n>.json`.
fn latest_baseline() -> String {
    let root = repo_root();
    let last = (1..)
        .take_while(|n| root.join(format!("BENCH_{n}.json")).exists())
        .last()
        .expect("at least BENCH_1.json is committed");
    std::fs::read_to_string(root.join(format!("BENCH_{last}.json"))).expect("read baseline")
}

/// First `"key": <value>` after the `"section":` header (the export has
/// a fixed key order; no JSON dependency needed).
fn section_value(doc: &str, section: &str, key: &str) -> String {
    let start = doc
        .find(&format!("\"{section}\":"))
        .unwrap_or_else(|| panic!("baseline has no section {section:?}"));
    let needle = format!("\"{key}\":");
    let rest = &doc[start..];
    let line = rest
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no {key:?} in section {section:?}"));
    line.split(&needle)
        .nth(1)
        .expect("value after key")
        .trim()
        .trim_end_matches(',')
        .to_string()
}

#[test]
fn default_target_reproduces_the_committed_baseline_exactly() {
    let doc = latest_baseline();
    let kp = workloads::average_kp(Tier::Asm, 1..3);
    let kg = workloads::average_kg(Tier::Asm, 1..3);
    for (section, run) in [("kp_this_work_asm", &kp), ("kg_this_work_asm", &kg)] {
        assert_eq!(
            section_value(&doc, section, "cycles"),
            run.report.cycles.to_string(),
            "{section} cycles drifted from the committed baseline"
        );
        assert_eq!(
            section_value(&doc, section, "energy_uj"),
            format!("{:.4}", run.report.energy_uj()),
            "{section} energy drifted from the committed baseline"
        );
    }
}

#[test]
fn with_default_target_is_bit_identical_to_the_legacy_path() {
    let g = koblitz::generator();
    let k = workloads::scalar(1);
    let mut legacy_mm = ModeledMul::new(Tier::Asm);
    let legacy = legacy_mm.kp(&g, &k);
    let mut targeted_mm = ModeledMul::with_target(Tier::Asm, m0plus::target::default_target());
    let targeted = targeted_mm.kp(&g, &k);
    assert_eq!(legacy.result, targeted.result);
    assert_eq!(legacy.report.cycles, targeted.report.cycles);
    assert_eq!(
        legacy.report.energy_pj.to_bits(),
        targeted.report.energy_pj.to_bits(),
        "default target must not perturb energy even in the last ulp"
    );
}

#[test]
fn cross_target_directions_are_sane() {
    let default = workloads::kp_under_target(Tier::Asm, m0plus::target::cortex_m0plus(), 1);
    let m0 = workloads::kp_under_target(Tier::Asm, m0plus::target::cortex_m0(), 1);
    let mul32 = workloads::kp_under_target(Tier::Asm, m0plus::target::cortex_m0plus_mul32(), 1);
    let m3 = workloads::kp_under_target(Tier::Asm, m0plus::target::cortex_m3(), 1);

    // The computed point is target-invariant: only costs move.
    for run in [&m0, &mul32, &m3] {
        assert_eq!(run.result, default.result);
    }
    // The M0's 3-stage pipeline pays more per taken branch, and a full
    // kP is branch-heavy (field-kernel loops), so it is strictly slower.
    assert!(
        m0.report.cycles > default.report.cycles,
        "cortex-m0 kP {} must exceed cortex-m0plus kP {}",
        m0.report.cycles,
        default.report.cycles
    );
    // Binary-field arithmetic is shift/XOR — a 32-cycle multiplier may
    // only ever add cycles, never remove them.
    assert!(mul32.report.cycles >= default.report.cycles);
}
