//! Smoke tests for every table/figure regenerator: each must produce
//! its section with the paper's reference values and our measured
//! values present, so a refactor cannot silently break the
//! reproduction harness.

use bench::tables;

#[test]
fn headline_mentions_both_operations_and_paper_targets() {
    let s = tables::headline();
    assert!(s.contains("kP:"));
    assert!(s.contains("kG:"));
    assert!(s.contains("2 814 827"), "paper kP cycles quoted");
    assert!(s.contains("20.63"), "paper kG energy quoted");
}

#[test]
fn table1_lists_all_three_methods_with_formulas_and_counts() {
    let s = tables::table1();
    assert!(s.contains("16n^2+23n"));
    assert!(s.contains("LD with rotating registers"));
    assert!(s.contains("LD with fixed registers"));
    assert!(s.contains("R="), "measured counts present");
}

#[test]
fn table2_contains_exact_formula_cycles_and_claims() {
    let s = tables::table2();
    for v in ["4980", "3492", "2968"] {
        assert!(s.contains(v), "formula cycle value {v}");
    }
    assert!(s.contains("15.0%"), "claimed improvement over B");
    assert!(s.contains("40.4%"), "claimed improvement over A");
}

#[test]
fn table3_reproduces_all_six_energy_rows() {
    let s = tables::table3();
    for v in ["10.98", "12.05", "12.14", "12.21", "12.43", "13.45"] {
        assert!(s.contains(v), "energy constant {v}");
    }
    assert!(s.contains("22.5%"));
}

#[test]
fn table4_has_literature_rows_live_rows_and_ratios() {
    let s = tables::table4();
    assert!(s.contains("Micro ECC"));
    assert!(s.contains("This work kP"));
    assert!(s.contains("Relic kG"));
    assert!(s.contains("Speedup vs RELIC"));
    assert!(s.contains("paper 1.99"));
    assert!(s.contains("secp256r1"), "prime model estimates included");
}

#[test]
fn table5_has_our_row_and_the_crossplatform_check() {
    let s = tables::table5();
    assert!(s.contains("This work (reproduction)"));
    assert!(s.contains("paper: Sqr 395 / Mul 3672"));
    assert!(s.contains("Out-of-sample"));
    assert!(s.contains("ATMega128L"));
}

#[test]
fn table6_compares_c_and_assembly() {
    let s = tables::table6();
    assert!(s.contains("Modular squaring"));
    assert!(s.contains("LD rotating registers"));
    assert!(s.contains("5964"), "paper C fixed-registers cycles");
    assert!(s.contains("3672"), "paper asm cycles");
    assert!(s.contains("kP") && s.contains("kG"));
}

#[test]
fn table7_has_every_category_and_both_columns() {
    let s = tables::table7();
    for label in [
        "TNAF Representation",
        "TNAF Precomputation",
        "Multiply Precomputation",
        "Square",
        "Inversion",
        "Support functions",
        "Total",
    ] {
        assert!(s.contains(label), "category {label}");
    }
    assert!(s.contains("1108890"), "paper Multiply cycles for kP");
}

#[test]
fn figure1_shows_the_residency_split() {
    let s = tables::figure1();
    assert!(s.contains("C15"));
    assert!(s.contains("##"), "register marker");
    assert!(s.contains(".."), "memory marker");
    assert!(s.contains("12 of 64"), "memory-touch analysis");
}

#[test]
fn model_analysis_reaches_both_conclusions() {
    let s = tables::model_analysis();
    assert!(s.contains("sect233k1 (binary Koblitz)"));
    assert!(s.contains("secp256r1 (prime)"));
    assert!(s.contains("Koblitz fastest at comparable security: true"));
    assert!(s.contains("less energy/cycle:       true"));
}
