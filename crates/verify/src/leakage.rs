//! The secret-independence checker.
//!
//! Each registered [`Kernel`] knows how to run one crypto kernel on a
//! *fresh, deterministic* machine with secrets drawn from a seed, and
//! returns the canonical [`Trace`] the m0plus recorder captured (PC
//! sequence, effective memory addresses, per-instruction cycles). The
//! engine runs every kernel on pairs of different seeds and compares
//! the traces class-by-class: a kernel is *independent* in a class iff
//! no pair ever diverged there. Machines are constructed identically on
//! every run, so slot addresses are reproducible and the only varying
//! input is the secret material itself.
//!
//! Dependence is not automatically a failure: the registry records, per
//! kernel, which classes are *allowed* to depend on the secret together
//! with the documented justification (e.g. the EEA inversion's
//! data-dependent loop, with the Itoh–Tsujii chain as the constant-time
//! alternative; or the wTNAF digit pattern the paper itself flags in
//! §5). A kernel's verdict is a failure only when it diverges in a
//! class the registry does not allow.

use gf2m::modeled::{ModeledField, Tier};
use gf2m::Fe;
use koblitz::modeled::ModeledMul;
use koblitz::{curve, Int};
use m0plus::{Trace, TraceClass, TraceDivergence};
use prng::SplitMix64;
use protocols::SigningKey;

/// How expensive one traced run of a kernel is — the campaign driver
/// uses fewer pairs for the point-multiplication kernels (each run is a
/// full scalar multiplication) than for the field kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// One field operation: hundreds to thousands of cycles.
    Cheap,
    /// A full point multiplication: hundreds of thousands of cycles.
    Expensive,
}

/// One registered crypto kernel.
pub struct Kernel {
    /// Kernel name; matches the `run_kernel` names used by the modeled
    /// tiers where one exists (`mul_asm`, `inv_eea_c`, …).
    pub name: &'static str,
    /// Run-cost class (drives the per-kernel pair budget).
    pub cost: Cost,
    /// Per-class allowance, indexed like [`TraceClass::ALL`]
    /// (`[pc, addr, cycles]`): `true` = secret-dependence in this class
    /// is documented and accepted.
    pub allowed: [bool; 3],
    /// Justification for any `true` entry in `allowed` (empty when the
    /// kernel must be fully independent).
    pub note: &'static str,
    run: Box<dyn Fn(u64) -> Trace>,
}

impl Kernel {
    /// Runs the kernel with secrets derived from `seed`, returning the
    /// captured trace.
    pub fn run(&self, seed: u64) -> Trace {
        (self.run)(seed)
    }
}

/// Observed outcome for one trace class of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassOutcome {
    /// No pair of runs ever diverged in this class.
    pub independent: bool,
    /// First observed divergence (disassembly of both sides), kept for
    /// the report.
    pub divergence: Option<TraceDivergence>,
}

/// Per-kernel leakage verdict.
#[derive(Debug, Clone)]
pub struct KernelVerdict {
    /// Kernel name (see [`Kernel::name`]).
    pub name: &'static str,
    /// Number of secret pairs compared.
    pub pairs: usize,
    /// Events in the first captured trace (a size sanity signal).
    pub trace_events: usize,
    /// Outcome per class, indexed like [`TraceClass::ALL`].
    pub classes: [ClassOutcome; 3],
    /// The registry's allowance, indexed like [`TraceClass::ALL`].
    pub allowed: [bool; 3],
    /// The registry's justification for allowed dependence.
    pub note: &'static str,
}

impl KernelVerdict {
    /// Whether every observed dependence is an allowed one.
    pub fn ok(&self) -> bool {
        self.classes
            .iter()
            .zip(self.allowed)
            .all(|(c, a)| c.independent || a)
    }

    /// Outcome label for one class: `independent`,
    /// `dependent (documented)` or `LEAK`.
    pub fn class_label(&self, i: usize) -> &'static str {
        if self.classes[i].independent {
            "independent"
        } else if self.allowed[i] {
            "dependent (documented)"
        } else {
            "LEAK"
        }
    }

    /// One-word overall verdict: `independent` when every class is
    /// independent, `documented-exception` when dependence stays within
    /// the registry allowance, `LEAK` otherwise.
    pub fn verdict(&self) -> &'static str {
        if !self.ok() {
            "LEAK"
        } else if self.classes.iter().all(|c| c.independent) {
            "independent"
        } else {
            "documented-exception"
        }
    }

    /// Multi-line report block for this kernel (deterministic).
    pub fn render(&self) -> String {
        let mut out = format!(
            "kernel {:<18} pairs={:<3} events={:<8}",
            self.name, self.pairs, self.trace_events
        );
        for (i, class) in TraceClass::ALL.iter().enumerate() {
            out.push_str(&format!(" {}={}", class.label(), self.class_label(i)));
        }
        out.push_str(&format!(" -> {}", self.verdict()));
        for (i, c) in self.classes.iter().enumerate() {
            if let (false, Some(d)) = (self.classes[i].independent, &c.divergence) {
                out.push_str(&format!("\n    first {d}"));
            }
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n    note: {}", self.note));
        }
        out
    }
}

/// Pair budget for a leakage campaign.
#[derive(Debug, Clone, Copy)]
pub struct LeakageConfig {
    /// Campaign seed; pair seeds are derived from it.
    pub seed: u64,
    /// Secret pairs per [`Cost::Cheap`] kernel.
    pub cheap_pairs: usize,
    /// Secret pairs per [`Cost::Expensive`] kernel.
    pub expensive_pairs: usize,
    /// The target cost model the kernels run under. Leakage verdicts
    /// must be target-invariant (a different cycle table rescales the
    /// trace uniformly per class, it cannot create or hide a
    /// divergence), and the `--target` axis lets CI check exactly that.
    pub target: &'static m0plus::TargetSpec,
}

impl LeakageConfig {
    /// The bounded CI smoke configuration (default target).
    pub fn smoke() -> LeakageConfig {
        LeakageConfig {
            seed: 0x1ea4a9e,
            cheap_pairs: 3,
            expensive_pairs: 1,
            target: m0plus::target::default_target(),
        }
    }

    /// The full campaign configuration (default target).
    pub fn full() -> LeakageConfig {
        LeakageConfig {
            seed: 0x1ea4a9e,
            cheap_pairs: 16,
            expensive_pairs: 2,
            target: m0plus::target::default_target(),
        }
    }
}

/// Checks one kernel over `pairs` pairs of seeds drawn from `rng`.
pub fn check_kernel(kernel: &Kernel, pairs: usize, rng: &mut SplitMix64) -> KernelVerdict {
    let mut classes: [ClassOutcome; 3] = std::array::from_fn(|_| ClassOutcome {
        independent: true,
        divergence: None,
    });
    let mut trace_events = 0;
    for _ in 0..pairs {
        let left = kernel.run(rng.next_u64());
        let right = kernel.run(rng.next_u64());
        trace_events = trace_events.max(left.len());
        for (i, &class) in TraceClass::ALL.iter().enumerate() {
            if classes[i].divergence.is_some() {
                continue; // keep the first example only
            }
            if let Some(d) = left.first_divergence(&right, class) {
                classes[i].independent = false;
                classes[i].divergence = Some(d);
            }
        }
    }
    KernelVerdict {
        name: kernel.name,
        pairs,
        trace_events,
        classes,
        allowed: kernel.allowed,
        note: kernel.note,
    }
}

/// Runs the whole registry under `config`, returning one verdict per
/// kernel in registry order.
pub fn run_campaign(config: &LeakageConfig) -> Vec<KernelVerdict> {
    let mut rng = SplitMix64::new(config.seed);
    registry_for(config.target)
        .iter()
        .map(|k| {
            let pairs = match k.cost {
                Cost::Cheap => config.cheap_pairs,
                Cost::Expensive => config.expensive_pairs,
            };
            check_kernel(k, pairs.max(1), &mut rng)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Secret-input generators (all driven by the per-run seed).
// ---------------------------------------------------------------------

fn rand_fe(rng: &mut SplitMix64) -> Fe {
    let mut w = [0u32; 8];
    rng.fill_u32(&mut w);
    Fe::from_words_reduced(w)
}

fn rand_nonzero_fe(rng: &mut SplitMix64) -> Fe {
    loop {
        let fe = rand_fe(rng);
        if !fe.is_zero() {
            return fe;
        }
    }
}

/// A uniformly random scalar in [1, n).
fn rand_scalar(rng: &mut SplitMix64) -> Int {
    let n = curve::order();
    loop {
        let mut limbs = vec![0u32; 8];
        for l in limbs.iter_mut() {
            *l = rng.next_u32();
        }
        let k = Int::from_limbs(false, limbs).mod_positive(&n);
        if !k.is_zero() {
            return k;
        }
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// Traces one field-kernel closure on a fresh Direct-backend machine.
fn field_trace(
    tier: Tier,
    target: &'static m0plus::TargetSpec,
    seed: u64,
    body: impl Fn(&mut ModeledField, &mut SplitMix64),
) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut f = ModeledField::with_target(tier, target);
    f.machine_mut().start_trace();
    body(&mut f, &mut rng);
    f.machine_mut().take_trace()
}

/// Traces one point-kernel closure on a fresh Direct-backend machine.
fn point_trace(
    tier: Tier,
    target: &'static m0plus::TargetSpec,
    seed: u64,
    body: impl Fn(&mut ModeledMul, &mut SplitMix64),
) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut mm = ModeledMul::with_target(tier, target);
    mm.field_mut().machine_mut().start_trace();
    body(&mut mm, &mut rng);
    mm.field_mut().machine_mut().take_trace()
}

const LD_TABLE_NOTE: &str = "window/squaring table lookups are indexed by operand \
     nibbles, so effective addresses depend on the data; the M0+ has no cache, so \
     address variation costs no cycles and is unobservable in the Table-3 power model";
const EEA_NOTE: &str = "the binary EEA's loop structure depends on operand degrees \
     (data-dependent shifts and swaps); the constant-time alternative is the \
     Itoh-Tsujii chain (inv_itoh_tsujii), used by the ladder's final conversion";
const TNAF_NOTE: &str = "the wTNAF digit pattern steers which window entry is added \
     (the paper's section 5 names this SPA exposure as future work); digit-string \
     *length* is fixed by recode padding, and the Montgomery ladder is the \
     constant-time alternative";

/// Builds the full kernel registry on the default target: every crypto
/// kernel of the stack with its per-class allowance and justification.
pub fn registry() -> Vec<Kernel> {
    registry_for(m0plus::target::default_target())
}

/// [`registry`] with the kernels' machines costed for an explicit
/// registry target.
pub fn registry_for(target: &'static m0plus::TargetSpec) -> Vec<Kernel> {
    let dep = true; // documented dependence allowed
    let indep = false; // must be independent
    let mut kernels: Vec<Kernel> = Vec::new();

    // --- field multiplication (LD-fixed asm, LD-fixed C, LD-rotating C)
    for (name, tier) in [("mul_asm", Tier::Asm), ("mul_ld_fixed_c", Tier::C)] {
        kernels.push(Kernel {
            name,
            cost: Cost::Cheap,
            allowed: [indep, dep, indep],
            note: LD_TABLE_NOTE,
            run: Box::new(move |seed| {
                field_trace(tier, target, seed, |f, rng| {
                    let (a, b) = (rand_fe(rng), rand_fe(rng));
                    let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
                    f.mul(sz, sa, sb);
                })
            }),
        });
    }
    kernels.push(Kernel {
        name: "mul_ld_rotating_c",
        cost: Cost::Cheap,
        allowed: [indep, dep, indep],
        note: LD_TABLE_NOTE,
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let (a, b) = (rand_fe(rng), rand_fe(rng));
                let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
                f.mul_rotating_c(sz, sa, sb);
            })
        }),
    });

    // --- squaring (256-entry byte table)
    for (name, tier) in [("sqr_asm", Tier::Asm), ("sqr_c", Tier::C)] {
        kernels.push(Kernel {
            name,
            cost: Cost::Cheap,
            allowed: [indep, dep, indep],
            note: LD_TABLE_NOTE,
            run: Box::new(move |seed| {
                field_trace(tier, target, seed, |f, rng| {
                    let a = rand_fe(rng);
                    let (sa, sz) = (f.alloc_init(a), f.alloc());
                    f.sqr(sz, sa);
                })
            }),
        });
    }

    // --- standalone reduction: straight-line, fully independent
    kernels.push(Kernel {
        name: "reduce_c",
        cost: Cost::Cheap,
        allowed: [indep, indep, indep],
        note: "",
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let (a, b) = (rand_fe(rng), rand_fe(rng));
                let wide = gf2m::mul::mul_poly_ld(a.words(), b.words());
                let z = f.alloc();
                f.reduce(z, &wide);
            })
        }),
    });

    // --- support ops
    kernels.push(Kernel {
        name: "fe_add",
        cost: Cost::Cheap,
        allowed: [indep, indep, indep],
        note: "",
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let (a, b) = (rand_fe(rng), rand_fe(rng));
                let (sa, sb, sz) = (f.alloc_init(a), f.alloc_init(b), f.alloc());
                f.add(sz, sa, sb);
            })
        }),
    });
    kernels.push(Kernel {
        name: "fe_cswap",
        cost: Cost::Cheap,
        allowed: [indep, indep, indep],
        note: "",
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let (a, b) = (rand_fe(rng), rand_fe(rng));
                let bit = rng.next_u64() & 1 == 1; // the secret
                let (sa, sb) = (f.alloc_init(a), f.alloc_init(b));
                f.cswap(sa, sb, bit);
            })
        }),
    });

    // --- inversion: EEA (data-dependent) vs Itoh-Tsujii (fixed chain)
    kernels.push(Kernel {
        name: "inv_eea_c",
        cost: Cost::Cheap,
        allowed: [dep, dep, dep],
        note: EEA_NOTE,
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let a = rand_nonzero_fe(rng);
                let (sa, sz) = (f.alloc_init(a), f.alloc());
                f.inv(sz, sa);
            })
        }),
    });
    kernels.push(Kernel {
        name: "inv_itoh_tsujii",
        cost: Cost::Cheap,
        allowed: [indep, dep, indep],
        note: LD_TABLE_NOTE,
        run: Box::new(move |seed| {
            field_trace(Tier::C, target, seed, |f, rng| {
                let a = rand_nonzero_fe(rng);
                let (sa, sz) = (f.alloc_init(a), f.alloc());
                f.inv_itoh_tsujii(sz, sa);
            })
        }),
    });

    // --- scalar recoding (charged bignum passes; digit-dependent)
    kernels.push(Kernel {
        name: "wtnaf_recode",
        cost: Cost::Cheap,
        allowed: [dep, dep, dep],
        note: TNAF_NOTE,
        run: Box::new(move |seed| {
            point_trace(Tier::Asm, target, seed, |mm, rng| {
                let k = rand_scalar(rng);
                let digits = mm.recode_charged(&k, 4);
                // The satellite fix this verifier confirms: the digit
                // count must never depend on the scalar.
                assert_eq!(digits.len(), koblitz::tnaf::recode_length());
            })
        }),
    });

    // --- point multiplication
    kernels.push(Kernel {
        name: "kp",
        cost: Cost::Expensive,
        allowed: [dep, dep, dep],
        note: TNAF_NOTE,
        run: Box::new(move |seed| {
            point_trace(Tier::Asm, target, seed, |mm, rng| {
                let k = rand_scalar(rng);
                mm.kp(&curve::generator(), &k);
            })
        }),
    });
    kernels.push(Kernel {
        name: "kg",
        cost: Cost::Expensive,
        allowed: [dep, dep, dep],
        note: TNAF_NOTE,
        run: Box::new(move |seed| {
            point_trace(Tier::Asm, target, seed, |mm, rng| {
                let k = rand_scalar(rng);
                mm.kg(&k);
            })
        }),
    });
    kernels.push(Kernel {
        name: "ladder",
        cost: Cost::Expensive,
        allowed: [indep, dep, indep],
        note: "control flow and cycle count are scalar-independent (fixed 232 \
             iterations of masked cswap + fixed-role step); only the LD/squaring \
             window-table addresses inside each field op vary with the data, which \
             the cacheless M0+ cannot turn into a timing or Table-3 power signal",
        run: Box::new(move |seed| {
            point_trace(Tier::Asm, target, seed, |mm, rng| {
                let k = rand_scalar(rng);
                mm.ladder(&curve::generator(), &k);
            })
        }),
    });

    // --- ECDSA signing nonce path: derive k (host DRBG), then k·G on
    // the machine. Inherits kG's documented digit dependence.
    kernels.push(Kernel {
        name: "ecdsa_sign_nonce",
        cost: Cost::Expensive,
        allowed: [dep, dep, dep],
        note: TNAF_NOTE,
        run: Box::new(move |seed| {
            point_trace(Tier::Asm, target, seed, |mm, rng| {
                let mut key_seed = [0u8; 32];
                rng.fill_bytes(&mut key_seed);
                let key = SigningKey::generate(&key_seed);
                let k = key.derive_nonce(b"leakage-campaign message", 0);
                assert!(!k.is_zero(), "DRBG nonce is zero");
                mm.kg(&k.to_int());
            })
        }),
    });

    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_for(name: &str, pairs: usize) -> KernelVerdict {
        let reg = registry();
        let kernel = reg.iter().find(|k| k.name == name).unwrap();
        check_kernel(kernel, pairs, &mut SplitMix64::new(42))
    }

    #[test]
    fn field_mul_kernels_are_cycle_and_pc_independent() {
        for name in ["mul_asm", "mul_ld_fixed_c", "mul_ld_rotating_c"] {
            let v = verdict_for(name, 4);
            assert!(v.ok(), "{name}: {}", v.render());
            assert!(v.classes[0].independent, "{name} pc");
            assert!(v.classes[2].independent, "{name} cycles");
            // The LD window lookup genuinely indexes by data, so the
            // address class must be seen to diverge — if it stopped
            // diverging, the table lookup model would be wrong.
            assert!(!v.classes[1].independent, "{name} addr should depend");
        }
    }

    #[test]
    fn sqr_reduce_add_cswap_verdicts() {
        for name in ["sqr_asm", "sqr_c"] {
            let v = verdict_for(name, 4);
            assert!(v.ok(), "{name}: {}", v.render());
            assert!(v.classes[0].independent && v.classes[2].independent);
        }
        for name in ["reduce_c", "fe_add", "fe_cswap"] {
            let v = verdict_for(name, 4);
            assert_eq!(v.verdict(), "independent", "{name}: {}", v.render());
        }
    }

    #[test]
    fn eea_inversion_is_detectably_data_dependent() {
        let v = verdict_for("inv_eea_c", 4);
        assert!(v.ok(), "allowed by the registry");
        assert_eq!(v.verdict(), "documented-exception");
        assert!(
            !v.classes[2].independent,
            "the EEA must show cycle dependence — the checker would be \
             blind if it cannot see it"
        );
        let d = v.classes[2].divergence.as_ref().unwrap();
        assert!(d.index > 0 || !d.left.is_empty());
    }

    #[test]
    fn itoh_tsujii_is_cycle_independent() {
        let v = verdict_for("inv_itoh_tsujii", 3);
        assert!(v.ok(), "{}", v.render());
        assert!(v.classes[0].independent && v.classes[2].independent);
    }

    #[test]
    fn recode_is_bounded_and_documented() {
        let v = verdict_for("wtnaf_recode", 2);
        assert!(v.ok(), "{}", v.render());
        assert_eq!(v.verdict(), "documented-exception");
    }

    #[test]
    fn render_mentions_disassembly_for_divergences() {
        let v = verdict_for("inv_eea_c", 2);
        let text = v.render();
        assert!(text.contains("first"), "{text}");
        assert!(text.contains("note:"), "{text}");
    }
}
