//! The cross-tier differential fuzz harness.
//!
//! Feeds identical seeded inputs through every execution tier and
//! cross-checks:
//!
//! * **field elements** — portable `Fe` vs the u64 [`GenericField`]
//!   oracle vs all three counted multiplication methods vs the modeled
//!   machine on both backends (results *and* the cycle counts of the
//!   Direct and Code backends, which must agree exactly) vs the
//!   64-lane bitsliced backend (the case pair rides in lanes 0/1 of a
//!   full 64-lane batch, so every case cross-checks all 64 independent
//!   dataflows of `mul`, `sqr` and the lane-parallel Itoh–Tsujii
//!   inversion against the portable ops);
//! * **scalars** — width-4 wTNAF, plain TNAF, the fixed-window kG path
//!   and the Montgomery ladder against the binary double-and-add
//!   reference, including the recoding fixed-length invariant;
//! * **wire frames** — randomly truncated/bit-flipped public keys,
//!   signatures and sealed frames through the slice and owned decoders,
//!   which must never panic and must return the same typed error.
//!
//! Every case is derived from the configured seed through a per-case
//! PRNG substream (`prng::SplitMix64::substream` keyed by seed, phase
//! domain and case index), so a case's inputs are a pure function of
//! its index: any contiguous window of the global case list (see
//! [`total_cases`]) can run on its own via [`run_window`], and
//! [`merge`] folds the window reports — in window order — into the
//! same canonical report [`run`] produces. The sharded
//! `verify_campaign` runner splits the case list across worker threads
//! that way, and CI diffs `--shards 1` against `--shards 4` to hold
//! the output byte-identical. A disagreement is reported with a
//! greedily shrunk minimal counterexample (see [`crate::shrink`]).

use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use gf2m::bitsliced;
use gf2m::generic::GenericField;
use gf2m::modeled::{ModeledField, Tier};
use gf2m::{counted, Fe};
use koblitz::{curve, mul, tnaf, Int};
use m0plus::Backend;
use prng::SplitMix64;
use protocols::wire::{
    decode_public_key, decode_public_key_slice, decode_signature, decode_signature_slice,
    encode_public_key, encode_signature, SealedFrame,
};
use protocols::SigningKey;

use crate::shrink;

/// Case budget for a differential run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Base seed; each phase derives its own stream from it.
    pub seed: u64,
    /// Field-element cases (each checked across every field tier pair).
    pub field_cases: usize,
    /// Scalar cases (each checked across every point-algorithm pair).
    pub scalar_cases: usize,
    /// Wire-frame mutation cases (each checked across decoder pairs).
    pub wire_cases: usize,
    /// Batch-inversion cases: each case draws a batch (with ~10% zeros)
    /// and cross-checks pointwise inversion vs the portable and counted
    /// Montgomery batch, plus batch affine conversion at the curve
    /// layer and the hybrid chunked bitsliced inversion (multi-chunk,
    /// ragged tail included) vs pointwise inversion.
    pub batch_cases: usize,
    /// The target cost model the modeled tiers run under. Architectural
    /// results must be target-invariant, so the differential verdict
    /// cannot depend on this — the `--target` axis exists to prove it.
    pub target: &'static m0plus::TargetSpec,
}

impl DiffConfig {
    /// Bounded CI smoke configuration (default target).
    pub fn smoke() -> DiffConfig {
        DiffConfig {
            seed: 0xd1ff,
            field_cases: 120,
            scalar_cases: 24,
            wire_cases: 300,
            batch_cases: 16,
            target: m0plus::target::default_target(),
        }
    }

    /// Full campaign: at least 1000 cases for every tier pair (default
    /// target).
    pub fn full() -> DiffConfig {
        DiffConfig {
            seed: 0xd1ff,
            field_cases: 1000,
            scalar_cases: 1000,
            wire_cases: 1000,
            batch_cases: 200,
            target: m0plus::target::default_target(),
        }
    }
}

/// One cross-tier disagreement (expected never to occur; kept in the
/// report with a shrunk counterexample when it does).
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Input domain (`field`, `scalar`, `wire`).
    pub domain: &'static str,
    /// The tier pair that disagreed, e.g. `portable/modeled_direct`.
    pub pair: String,
    /// Case index within the domain's stream.
    pub case_index: usize,
    /// Hex of the (shrunk, when shrinkable) offending input.
    pub input: String,
    /// What differed.
    pub detail: String,
}

/// Agreement counters for one tier pair.
#[derive(Debug, Clone)]
pub struct TierPair {
    /// Pair label, e.g. `portable/generic_u64`.
    pub pair: String,
    /// Cases cross-checked.
    pub cases: usize,
    /// Cases that disagreed.
    pub disagreements: usize,
}

/// The result of one differential run.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Echo of the seed the run used.
    pub seed: u64,
    /// Per tier-pair agreement counters (fixed order).
    pub pairs: Vec<TierPair>,
    /// Every disagreement, in discovery order.
    pub disagreements: Vec<Disagreement>,
    /// Decoder error taxonomy: variant name → occurrences (identical
    /// across the slice and owned decoders by construction — a variant
    /// mismatch is recorded as a disagreement instead).
    pub wire_taxonomy: BTreeMap<String, u64>,
    /// Decoder calls that panicked (must stay zero).
    pub wire_panics: usize,
}

impl DiffReport {
    /// Whether the run found full agreement and no panics.
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty() && self.wire_panics == 0
    }

    fn pair_entry(&mut self, pair: &str) -> &mut TierPair {
        if let Some(i) = self.pairs.iter().position(|p| p.pair == pair) {
            return &mut self.pairs[i];
        }
        self.pairs.push(TierPair {
            pair: pair.to_string(),
            cases: 0,
            disagreements: 0,
        });
        self.pairs.last_mut().expect("just pushed")
    }

    fn record(&mut self, pair: &str, agreed: bool) {
        let entry = self.pair_entry(pair);
        entry.cases += 1;
        if !agreed {
            entry.disagreements += 1;
        }
    }

    /// Deterministic text rendering (what the CI determinism gate
    /// diffs).
    pub fn render(&self) -> String {
        let mut out = format!("differential harness (seed {:#x})\n", self.seed);
        for p in &self.pairs {
            out.push_str(&format!(
                "  tier-pair {:<34} {:>6} cases, {} disagreements\n",
                p.pair, p.cases, p.disagreements
            ));
        }
        out.push_str("  decoder error taxonomy:\n");
        for (variant, count) in &self.wire_taxonomy {
            out.push_str(&format!("    {variant:<28} {count}\n"));
        }
        out.push_str(&format!("  decoder panics: {}\n", self.wire_panics));
        for d in &self.disagreements {
            out.push_str(&format!(
                "  DISAGREEMENT [{}] {} case {}: {} (input {})\n",
                d.domain, d.pair, d.case_index, d.detail, d.input
            ));
        }
        out
    }
}

/// Substream domains, one per phase, so the phases draw from
/// unrelated generators even for equal case indices.
const FIELD_DOMAIN: u64 = 0xf1e1d;
const SCALAR_DOMAIN: u64 = 0x5ca1a7;
const WIRE_DOMAIN: u64 = 0x3175;
const BATCH_DOMAIN: u64 = 0xba7c4;

/// Size of the global case list: the four phase case lists
/// concatenated (field, then scalar, then wire, then batch). This is
/// the range sharded runners split into windows for [`run_window`].
pub fn total_cases(config: &DiffConfig) -> usize {
    config.field_cases + config.scalar_cases + config.wire_cases + config.batch_cases
}

/// Intersects a global-index window with one phase's sub-range and
/// rebases it to phase-local case indices.
fn phase_window(window: &Range<usize>, base: usize, count: usize) -> Range<usize> {
    let lo = window.start.clamp(base, base + count) - base;
    let hi = window.end.clamp(base, base + count) - base;
    lo..hi
}

/// Runs the cases of one contiguous window of the global case list
/// (`0..total_cases`). Every case draws from its own substream, so the
/// produced counters depend only on the window contents — never on
/// which shard ran them. The result is a *partial* report; fold the
/// windows with [`merge`].
pub fn run_window(config: &DiffConfig, window: Range<usize>) -> DiffReport {
    let mut report = DiffReport {
        seed: config.seed,
        ..DiffReport::default()
    };
    let scalar_base = config.field_cases;
    let wire_base = scalar_base + config.scalar_cases;
    let batch_base = wire_base + config.wire_cases;
    field_phase(
        config,
        &mut report,
        phase_window(&window, 0, config.field_cases),
    );
    scalar_phase(
        config,
        &mut report,
        phase_window(&window, scalar_base, config.scalar_cases),
    );
    wire_phase(
        config,
        &mut report,
        phase_window(&window, wire_base, config.wire_cases),
    );
    batch_phase(
        config,
        &mut report,
        phase_window(&window, batch_base, config.batch_cases),
    );
    report
}

/// Folds window reports (in window order) into the canonical report:
/// pair counters summed and sorted by pair name, disagreements
/// concatenated (window order == global case order), taxonomy and
/// panic counters summed. [`run`] goes through the same fold, so a
/// single-window run renders byte-identically to any sharded split.
pub fn merge(config: &DiffConfig, parts: Vec<DiffReport>) -> DiffReport {
    let mut out = DiffReport {
        seed: config.seed,
        ..DiffReport::default()
    };
    for part in parts {
        for p in part.pairs {
            let entry = out.pair_entry(&p.pair);
            entry.cases += p.cases;
            entry.disagreements += p.disagreements;
        }
        out.disagreements.extend(part.disagreements);
        for (variant, count) in part.wire_taxonomy {
            *out.wire_taxonomy.entry(variant).or_insert(0) += count;
        }
        out.wire_panics += part.wire_panics;
    }
    out.pairs.sort_by(|a, b| a.pair.cmp(&b.pair));
    out
}

/// Runs all differential phases under `config`.
pub fn run(config: &DiffConfig) -> DiffReport {
    let full = run_window(config, 0..total_cases(config));
    merge(config, vec![full])
}

// ---------------------------------------------------------------------
// Field elements.
// ---------------------------------------------------------------------

fn rand_fe(rng: &mut SplitMix64) -> Fe {
    let mut w = [0u32; 8];
    rng.fill_u32(&mut w);
    Fe::from_words_reduced(w)
}

/// Field edge cases fed before the random stream.
fn field_edges() -> Vec<(Fe, Fe)> {
    let top = {
        let mut w = [0u32; 8];
        w[7] = 0x1FF; // bit 232 and friends set
        Fe::from_words_reduced(w)
    };
    let ones = Fe::from_words_reduced([u32::MAX; 8]);
    vec![
        (Fe::ZERO, Fe::ZERO),
        (Fe::ZERO, Fe::ONE),
        (Fe::ONE, Fe::ONE),
        (top, Fe::ONE),
        (top, top),
        (ones, ones),
    ]
}

fn disagree_fe(
    report: &mut DiffReport,
    pair: &str,
    case: usize,
    a: Fe,
    b: Fe,
    detail: String,
    still_fails: impl Fn(&[u8]) -> bool,
) {
    let mut input = Vec::new();
    input.extend_from_slice(&a.to_be_bytes());
    input.extend_from_slice(&b.to_be_bytes());
    let shrunk = shrink::shrink_bytes(&input, still_fails);
    report.disagreements.push(Disagreement {
        domain: "field",
        pair: pair.to_string(),
        case_index: case,
        input: shrink::hex(&shrunk),
        detail,
    });
}

/// Decodes the shrinker's 60-byte field-pair serialisation.
fn bytes_to_fe_pair(bytes: &[u8]) -> (Fe, Fe) {
    let mut buf = [0u8; 60];
    let n = bytes.len().min(60);
    buf[..n].copy_from_slice(&bytes[..n]);
    let a: [u8; 30] = buf[..30].try_into().expect("30 bytes");
    let b: [u8; 30] = buf[30..].try_into().expect("30 bytes");
    (Fe::from_be_bytes(&a), Fe::from_be_bytes(&b))
}

fn field_phase(config: &DiffConfig, report: &mut DiffReport, cases: Range<usize>) {
    if cases.is_empty() {
        return;
    }
    let oracle = GenericField::sect233k1();
    let mut direct = ModeledField::with_target(Tier::Asm, config.target);
    let (da, db, dz) = (direct.alloc(), direct.alloc(), direct.alloc());
    let mut code = ModeledField::with_target(Tier::Asm, config.target);
    code.set_backend(Backend::Code);
    let (ca, cb, cz) = (code.alloc(), code.alloc(), code.alloc());

    let edges = field_edges();
    for case in cases {
        let mut rng = SplitMix64::substream(config.seed, FIELD_DOMAIN, case as u64);
        let (a, b) = edges
            .get(case)
            .copied()
            .unwrap_or_else(|| (rand_fe(&mut rng), rand_fe(&mut rng)));
        let want_mul = a * b;
        let want_sqr = a.square();

        // u64 generic-field oracle.
        let got = oracle
            .element_to_fe(&oracle.mul(&oracle.element_from_fe(a), &oracle.element_from_fe(b)));
        report.record("portable/generic_u64", got == want_mul);
        if got != want_mul {
            disagree_fe(
                report,
                "portable/generic_u64",
                case,
                a,
                b,
                format!("mul: portable {want_mul} vs generic {got}"),
                |bytes| {
                    let (a, b) = bytes_to_fe_pair(bytes);
                    let o = GenericField::sect233k1();
                    o.element_to_fe(&o.mul(&o.element_from_fe(a), &o.element_from_fe(b))) != a * b
                },
            );
        }
        let got_sqr = oracle.element_to_fe(&oracle.sqr(&oracle.element_from_fe(a)));
        report.record("portable/generic_u64_sqr", got_sqr == want_sqr);

        // Counted tier: all three multiplication methods.
        for (name, value) in [
            ("portable/counted_ld", counted::mul_ld(a, b).value),
            (
                "portable/counted_ld_rotating",
                counted::mul_ld_rotating(a, b).value,
            ),
            (
                "portable/counted_ld_fixed",
                counted::mul_ld_fixed(a, b).value,
            ),
        ] {
            report.record(name, value == want_mul);
            if value != want_mul {
                disagree_fe(
                    report,
                    name,
                    case,
                    a,
                    b,
                    format!("mul: portable {want_mul} vs counted {value}"),
                    |_| false,
                );
            }
        }

        // Modeled tier, Direct backend: mul + sqr.
        direct.store(da, a);
        direct.store(db, b);
        let snap = direct.machine().cycles();
        direct.mul(dz, da, db);
        direct.sqr(dz, da);
        let direct_cycles = direct.machine().cycles() - snap;
        // (the modeled tier asserts against portable internally in
        // debug builds; the explicit check also covers release runs)
        direct.mul(dz, da, db);
        let direct_mul = direct.load(dz);
        report.record("portable/modeled_direct", direct_mul == want_mul);
        if direct_mul != want_mul {
            disagree_fe(
                report,
                "portable/modeled_direct",
                case,
                a,
                b,
                format!("mul: portable {want_mul} vs modeled {direct_mul}"),
                |_| false,
            );
        }

        // Modeled tier, Code backend: identical results and *cycles*.
        code.store(ca, a);
        code.store(cb, b);
        let snap = code.machine().cycles();
        code.mul(cz, ca, cb);
        code.sqr(cz, ca);
        let code_cycles = code.machine().cycles() - snap;
        let agreed = code_cycles == direct_cycles;
        report.record("modeled_direct/modeled_code_cycles", agreed);
        if !agreed {
            disagree_fe(
                report,
                "modeled_direct/modeled_code_cycles",
                case,
                a,
                b,
                format!("mul+sqr cycles: direct {direct_cycles} vs code {code_cycles}"),
                |_| false,
            );
        }
        code.mul(cz, ca, cb);
        report.record("portable/modeled_code", code.load(cz) == want_mul);

        // Standalone reduction: interleaved portable vs bitwise vs the
        // modeled reduce kernel (sampled — it re-runs the mul frame).
        let wide = gf2m::mul::mul_poly_ld(a.words(), b.words());
        let bitwise = gf2m::reduce::reduce_bitwise(wide);
        report.record("reduce_word/reduce_bitwise", bitwise == want_mul);
        if case % 16 == 0 {
            direct.reduce(dz, &wide);
            report.record("portable/modeled_reduce", direct.load(dz) == want_mul);
        }

        // Inversion: EEA host vs generic oracle vs modeled (sampled).
        if case % 32 == 0 && !a.is_zero() {
            let inv = a.invert().expect("non-zero");
            let got = oracle
                .inv(&oracle.element_from_fe(a))
                .map(|p| oracle.element_to_fe(&p));
            report.record("portable/generic_u64_inv", got == Some(inv));
            direct.store(da, a);
            direct.inv(dz, da);
            report.record("portable/modeled_inv", direct.load(dz) == inv);
        }

        // Bitsliced 64-lane tier. The case pair rides in lanes 0/1,
        // the zero and one lanes are pinned, and the rest fill from
        // the case substream — so every case cross-checks all 64
        // independent lane dataflows of mul, sqr and the
        // lane-parallel Itoh–Tsujii inversion against the portable
        // ops in one go.
        let mut xs = vec![a, b, Fe::ZERO, Fe::ONE];
        let mut ys = vec![b, a, Fe::ONE, a];
        while xs.len() < bitsliced::LANES {
            xs.push(rand_fe(&mut rng));
            ys.push(rand_fe(&mut rng));
        }
        let bx = bitsliced::transpose_in(&xs);
        let by = bitsliced::transpose_in(&ys);
        let bmul = bx.mul(&by);
        let bsqr = bx.sqr();
        let binv = bx.batch_inv();
        let mut bits_detail = None;
        for j in 0..bitsliced::LANES {
            if bmul.lane(j) != xs[j] * ys[j] {
                bits_detail = Some(format!("mul lane {j} vs portable"));
                break;
            }
            if bsqr.lane(j) != xs[j].square() {
                bits_detail = Some(format!("sqr lane {j} vs portable"));
                break;
            }
            if binv.lane(j) != xs[j].invert().unwrap_or(Fe::ZERO) {
                bits_detail = Some(format!("inv lane {j} vs portable"));
                break;
            }
        }
        report.record("portable/bitsliced", bits_detail.is_none());
        if let Some(detail) = bits_detail {
            disagree_fe(report, "portable/bitsliced", case, a, b, detail, |bytes| {
                let (a, b) = bytes_to_fe_pair(bytes);
                let bx = bitsliced::transpose_in(&[a, b]);
                let m = bx.mul(&bitsliced::transpose_in(&[b, a]));
                m.lane(0) != a * b
                    || m.lane(1) != b * a
                    || bx.sqr().lane(0) != a.square()
                    || bx.batch_inv().lane(0) != a.invert().unwrap_or(Fe::ZERO)
            });
        }

        // Counted tier vs bitsliced: the paper's Method-C counted
        // multiplication and the lane-space Karatsuba must land on
        // the same value for the case pair.
        let counted_vs_bits = counted::mul_ld_fixed(a, b).value == bmul.lane(0);
        report.record("counted/bitsliced", counted_vs_bits);
        if !counted_vs_bits {
            disagree_fe(
                report,
                "counted/bitsliced",
                case,
                a,
                b,
                "counted mul_ld_fixed vs bitsliced lane 0".to_string(),
                |bytes| {
                    let (a, b) = bytes_to_fe_pair(bytes);
                    let m = bitsliced::transpose_in(&[a]).mul(&bitsliced::transpose_in(&[b]));
                    counted::mul_ld_fixed(a, b).value != m.lane(0)
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// Scalars.
// ---------------------------------------------------------------------

/// Scalar edge cases fed before the random stream: zero, small, the
/// group order and its neighbours, and top-bit-set patterns.
fn scalar_edges() -> Vec<Int> {
    let n = curve::order();
    let top_bit = Int::one().shl(232);
    vec![
        Int::zero(),
        Int::one(),
        Int::from(2i64),
        Int::from(3i64),
        Int::from(0x7FFFi64),
        &n - &Int::one(),
        n.clone(),
        &n + &Int::one(),
        top_bit.clone(),
        &top_bit + &Int::one(),
        Int::one().shl(231),
        &n - &Int::from(12345i64),
    ]
}

fn rand_scalar_wide(rng: &mut SplitMix64) -> Int {
    // Deliberately up to 240 bits: values ≥ n must reduce identically
    // across every algorithm.
    let mut limbs = vec![0u32; 8];
    for l in limbs.iter_mut() {
        *l = rng.next_u32();
    }
    limbs[7] &= 0xFFFF; // 240 bits
    Int::from_limbs(false, limbs)
}

fn scalar_phase(config: &DiffConfig, report: &mut DiffReport, cases: Range<usize>) {
    if cases.is_empty() {
        return;
    }
    let g = curve::generator();
    let edges = scalar_edges();
    for case in cases {
        let mut rng = SplitMix64::substream(config.seed, SCALAR_DOMAIN, case as u64);
        let k = edges
            .get(case)
            .cloned()
            .unwrap_or_else(|| rand_scalar_wide(&mut rng));
        let reference = g.mul_binary(&k);
        let checks = [
            ("binary/wtnaf_w4", mul::mul_wtnaf(&g, &k, 4)),
            ("binary/tnaf", mul::mul_tnaf(&g, &k)),
            ("binary/kg_window", mul::mul_g(&k)),
            ("binary/ladder", mul::montgomery_ladder(&g, &k)),
        ];
        for (pair, got) in checks {
            let agreed = got == reference;
            report.record(pair, agreed);
            if !agreed {
                report.disagreements.push(Disagreement {
                    domain: "scalar",
                    pair: pair.to_string(),
                    case_index: case,
                    input: k.to_hex(),
                    detail: format!("point mismatch for k = {k}"),
                });
            }
        }
        // The recoding fixed-length invariant (satellite fix): no
        // scalar may change the digit count.
        let fixed = tnaf::recode(&k, 4).len() == tnaf::recode_length()
            && tnaf::recode(&k, 6).len() == tnaf::recode_length();
        report.record("recode/fixed_length", fixed);
        if !fixed {
            report.disagreements.push(Disagreement {
                domain: "scalar",
                pair: "recode/fixed_length".to_string(),
                case_index: case,
                input: k.to_hex(),
                detail: "recode length depends on the scalar".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Batch inversion and batch affine conversion.
// ---------------------------------------------------------------------

fn batch_phase(config: &DiffConfig, report: &mut DiffReport, cases: Range<usize>) {
    if cases.is_empty() {
        return;
    }
    let g = curve::generator();
    for case in cases {
        let mut rng = SplitMix64::substream(config.seed, BATCH_DOMAIN, case as u64);
        // Sizes sweep the empty batch, a singleton, then random widths.
        let len = match case {
            0 => 0,
            1 => 1,
            _ => 2 + rng.below(62) as usize,
        };
        let elems: Vec<Fe> = (0..len)
            .map(|_| {
                // ~10% zeros so the skip-in-place path is exercised.
                if rng.below(10) == 0 {
                    Fe::ZERO
                } else {
                    rand_fe(&mut rng)
                }
            })
            .collect();

        // Portable Montgomery batch vs pointwise inversion.
        let batch = gf2m::batch::batch_inverted(&elems);
        let agreed = elems.iter().zip(&batch).all(|(e, b)| match e.invert() {
            Some(inv) => *b == inv,
            None => b.is_zero(),
        });
        report.record("pointwise_inv/batch_inv", agreed);
        if !agreed {
            report.disagreements.push(Disagreement {
                domain: "batch",
                pair: "pointwise_inv/batch_inv".to_string(),
                case_index: case,
                input: format!("len {len}"),
                detail: "Montgomery batch disagrees with pointwise inversion".to_string(),
            });
        }

        // Counted tier: identical values, and the 1 + 3(N−1) formula.
        let counted_batch = gf2m::batch::batch_invert_counted(&elems);
        let nonzero = elems.iter().filter(|e| !e.is_zero()).count();
        let counts_ok = counted_batch.values == batch
            && counted_batch.inversions == u64::from(nonzero > 0)
            && counted_batch.muls as usize == 3 * nonzero.saturating_sub(1);
        report.record("batch_inv/batch_inv_counted", counts_ok);
        if !counts_ok {
            report.disagreements.push(Disagreement {
                domain: "batch",
                pair: "batch_inv/batch_inv_counted".to_string(),
                case_index: case,
                input: format!("len {len}, nonzero {nonzero}"),
                detail: format!(
                    "counted batch: {} inversions, {} muls",
                    counted_batch.inversions, counted_batch.muls
                ),
            });
        }

        // Curve layer: batch affine conversion vs per-point to_affine,
        // with the point at infinity mixed in.
        let points: Vec<koblitz::LdPoint> = (0..len.min(6))
            .map(|_| {
                if rng.below(8) == 0 {
                    koblitz::LdPoint::INFINITY
                } else {
                    mul::mul_wtnaf_proj(&g, &rand_scalar_wide(&mut rng), 4)
                }
            })
            .collect();
        let converted = koblitz::batch_to_affine(&points);
        let pointwise: Vec<_> = points.iter().map(|p| p.to_affine()).collect();
        let agreed = converted == pointwise;
        report.record("pointwise_affine/batch_affine", agreed);
        if !agreed {
            report.disagreements.push(Disagreement {
                domain: "batch",
                pair: "pointwise_affine/batch_affine".to_string(),
                case_index: case,
                input: format!("{} points", points.len()),
                detail: "batch affine conversion disagrees with to_affine".to_string(),
            });
        }

        // Bitsliced hybrid chunked inversion: the small batch above
        // (single ragged chunk, possibly empty) and a widened batch
        // spanning several 64-lane chunks plus a ragged tail, both
        // checked bit-for-bit against pointwise inversion. This calls
        // the production seam directly, so it holds regardless of the
        // crossover threshold or the runtime toggle — and it never
        // touches that global toggle, keeping sharded runs race-free.
        let mut widened_src = elems.clone();
        while widened_src.len() < len + 2 * bitsliced::LANES + 9 {
            widened_src.push(if rng.below(10) == 0 {
                Fe::ZERO
            } else {
                rand_fe(&mut rng)
            });
        }
        let mut small = elems.clone();
        bitsliced::invert_elements(&mut small);
        let mut widened = widened_src.clone();
        bitsliced::invert_elements(&mut widened);
        let small_ok = small == batch;
        let widened_ok = widened_src
            .iter()
            .zip(&widened)
            .all(|(src, got)| match src.invert() {
                Some(inv) => *got == inv,
                None => got.is_zero(),
            });
        let bits_agreed = small_ok && widened_ok;
        report.record("batch_inv/bitsliced_batch_inv", bits_agreed);
        if !bits_agreed {
            report.disagreements.push(Disagreement {
                domain: "batch",
                pair: "batch_inv/bitsliced_batch_inv".to_string(),
                case_index: case,
                input: format!("len {len} (widened {})", widened.len()),
                detail: "bitsliced chunked inversion disagrees with the scalar chain".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Wire frames.
// ---------------------------------------------------------------------

/// Stable variant label for the taxonomy map.
fn wire_error_label(e: &protocols::wire::WireError) -> &'static str {
    use protocols::wire::WireError::*;
    match e {
        BadPoint(_) => "BadPoint",
        IdentityPoint => "IdentityPoint",
        WrongOrder => "WrongOrder",
        BadScalar => "BadScalar",
        BadTag => "BadTag",
        BadLength { .. } => "BadLength",
        Oversize { .. } => "Oversize",
        Replayed { .. } => "Replayed",
    }
}

fn wire_phase(config: &DiffConfig, report: &mut DiffReport, cases: Range<usize>) {
    if cases.is_empty() {
        return;
    }
    let key = SigningKey::generate(b"verify differential wire identity");
    let pk_bytes = encode_public_key(key.public()).to_vec();
    let sig_bytes = encode_signature(&key.sign(b"wire differential message")).to_vec();
    let secret = [0x5au8; 32];
    let frame_bytes = SealedFrame::seal(&secret, 7, b"telemetry frame 0x2a")
        .as_bytes()
        .to_vec();

    for case in cases {
        let mut rng = SplitMix64::substream(config.seed, WIRE_DOMAIN, case as u64);
        let template: &[u8] = match case % 3 {
            0 => &pk_bytes,
            1 => &sig_bytes,
            _ => &frame_bytes,
        };
        let buf = mutate(template, &mut rng);

        match case % 3 {
            0 => {
                // Public key: slice decoder vs owned-array decoder.
                let slice = catch_unwind(AssertUnwindSafe(|| decode_public_key_slice(&buf)));
                let Ok(slice) = slice else {
                    report.wire_panics += 1;
                    continue;
                };
                tally(report, "pk", &slice);
                if let Ok(arr) = <&[u8; 31]>::try_from(buf.as_slice()) {
                    let owned = catch_unwind(AssertUnwindSafe(|| decode_public_key(arr)));
                    let Ok(owned) = owned else {
                        report.wire_panics += 1;
                        continue;
                    };
                    let agreed = owned == slice;
                    report.record("decode_pk_slice/decode_pk_owned", agreed);
                    if !agreed {
                        wire_disagree(report, case, &buf, "public-key decoders", |b| {
                            <&[u8; 31]>::try_from(b)
                                .map(|arr| decode_public_key(arr) != decode_public_key_slice(b))
                                .unwrap_or(false)
                        });
                    }
                } else {
                    // Wrong length must be the typed BadLength error.
                    let agreed = matches!(slice, Err(protocols::wire::WireError::BadLength { .. }));
                    report.record("decode_pk_slice/length_taxonomy", agreed);
                }
            }
            1 => {
                let slice = catch_unwind(AssertUnwindSafe(|| decode_signature_slice(&buf)));
                let Ok(slice) = slice else {
                    report.wire_panics += 1;
                    continue;
                };
                tally(report, "sig", &slice);
                if let Ok(arr) = <&[u8; 60]>::try_from(buf.as_slice()) {
                    let owned = catch_unwind(AssertUnwindSafe(|| decode_signature(arr)));
                    let Ok(owned) = owned else {
                        report.wire_panics += 1;
                        continue;
                    };
                    let agreed = owned == slice;
                    report.record("decode_sig_slice/decode_sig_owned", agreed);
                    if !agreed {
                        wire_disagree(report, case, &buf, "signature decoders", |b| {
                            <&[u8; 60]>::try_from(b)
                                .map(|arr| decode_signature(arr) != decode_signature_slice(b))
                                .unwrap_or(false)
                        });
                    }
                } else {
                    let agreed = matches!(slice, Err(protocols::wire::WireError::BadLength { .. }));
                    report.record("decode_sig_slice/length_taxonomy", agreed);
                }
            }
            _ => {
                // Sealed frame: parse, then authenticate. Both layers
                // must be panic-free; parse-then-open must agree with
                // parse-then-open on a reconstructed frame (owned
                // round-trip).
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    SealedFrame::from_bytes(&buf).and_then(|f| f.open(&secret))
                }));
                let Ok(outcome) = outcome else {
                    report.wire_panics += 1;
                    continue;
                };
                match &outcome {
                    Ok(_) => {
                        *report
                            .wire_taxonomy
                            .entry("frame/Accepted".into())
                            .or_insert(0) += 1
                    }
                    Err(e) => {
                        *report
                            .wire_taxonomy
                            .entry(format!("frame/{}", wire_error_label(e)))
                            .or_insert(0) += 1
                    }
                }
                // Owned round-trip: re-encoding a parsed frame and
                // re-parsing must be lossless and open identically.
                if let Ok(frame) = SealedFrame::from_bytes(&buf) {
                    let reparsed = SealedFrame::from_bytes(frame.as_bytes())
                        .expect("re-encoding a parsed frame always parses");
                    let agreed = reparsed.open(&secret) == outcome;
                    report.record("frame_parse/frame_roundtrip", agreed);
                    if !agreed {
                        wire_disagree(report, case, &buf, "frame round-trip", |_| false);
                    }
                } else {
                    report.record("frame_parse/frame_roundtrip", true);
                }
            }
        }
    }
}

fn tally<T>(report: &mut DiffReport, kind: &str, result: &Result<T, protocols::wire::WireError>) {
    let label = match result {
        Ok(_) => format!("{kind}/Accepted"),
        Err(e) => format!("{kind}/{}", wire_error_label(e)),
    };
    *report.wire_taxonomy.entry(label).or_insert(0) += 1;
}

fn wire_disagree(
    report: &mut DiffReport,
    case: usize,
    buf: &[u8],
    what: &str,
    still_fails: impl Fn(&[u8]) -> bool,
) {
    let shrunk = shrink::shrink_bytes(buf, still_fails);
    report.disagreements.push(Disagreement {
        domain: "wire",
        pair: what.to_string(),
        case_index: case,
        input: shrink::hex(&shrunk),
        detail: format!("{what} returned different results"),
    });
}

/// One random mutation of a template frame: truncation/extension,
/// bit flips, or byte substitutions (occasionally left intact so the
/// accepted path is also exercised).
fn mutate(template: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut buf = template.to_vec();
    match rng.below(5) {
        0 => {
            // Truncate (possibly to empty).
            let len = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(len);
        }
        1 => {
            // Extend with random bytes.
            let extra = rng.below(16) as usize + 1;
            for _ in 0..extra {
                buf.push(rng.next_u32() as u8);
            }
        }
        2 if !buf.is_empty() => {
            // Flip 1–4 random bits.
            for _ in 0..rng.below(4) + 1 {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
        }
        3 if !buf.is_empty() => {
            // Substitute a random byte.
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = rng.next_u32() as u8;
        }
        _ => {} // intact
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_agrees_everywhere() {
        let cfg = DiffConfig {
            seed: 1,
            field_cases: 24,
            scalar_cases: 14,
            wire_cases: 60,
            batch_cases: 6,
            target: m0plus::target::default_target(),
        };
        let report = run(&cfg);
        assert!(report.ok(), "{}", report.render());
        assert!(report.pairs.iter().all(|p| p.disagreements == 0));
        // Every named pair saw every case of its domain.
        let find = |name: &str| {
            report
                .pairs
                .iter()
                .find(|p| p.pair == name)
                .unwrap_or_else(|| panic!("missing pair {name}"))
                .cases
        };
        assert_eq!(find("portable/generic_u64"), 24);
        assert_eq!(find("portable/counted_ld"), 24);
        assert_eq!(find("portable/modeled_direct"), 24);
        assert_eq!(find("modeled_direct/modeled_code_cycles"), 24);
        assert_eq!(find("portable/bitsliced"), 24);
        assert_eq!(find("counted/bitsliced"), 24);
        assert_eq!(find("binary/wtnaf_w4"), 14);
        assert_eq!(find("binary/ladder"), 14);
        assert_eq!(find("recode/fixed_length"), 14);
        assert_eq!(find("pointwise_inv/batch_inv"), 6);
        assert_eq!(find("batch_inv/batch_inv_counted"), 6);
        assert_eq!(find("pointwise_affine/batch_affine"), 6);
        assert_eq!(find("batch_inv/bitsliced_batch_inv"), 6);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = DiffConfig {
            seed: 99,
            field_cases: 10,
            scalar_cases: 13,
            wire_cases: 40,
            batch_cases: 5,
            target: m0plus::target::default_target(),
        };
        assert_eq!(run(&cfg).render(), run(&cfg).render());
    }

    #[test]
    fn windowed_runs_merge_to_the_full_report() {
        let cfg = DiffConfig {
            seed: 5,
            field_cases: 20,
            scalar_cases: 13,
            wire_cases: 33,
            batch_cases: 5,
            target: m0plus::target::default_target(),
        };
        let baseline = run(&cfg).render();
        let total = total_cases(&cfg);
        for shards in [2usize, 3, 7] {
            // Contiguous balanced windows, like bench::shard::windows.
            let mut parts = Vec::new();
            let mut start = 0;
            for i in 0..shards {
                let len = total / shards + usize::from(i < total % shards);
                parts.push(run_window(&cfg, start..start + len));
                start += len;
            }
            assert_eq!(start, total);
            assert_eq!(merge(&cfg, parts).render(), baseline, "shards = {shards}");
        }
    }

    #[test]
    fn scalar_edges_cover_the_required_cases() {
        let edges = scalar_edges();
        let n = curve::order();
        assert!(edges.iter().any(|k| k.is_zero()));
        assert!(edges.contains(&(&n - &Int::one())));
        assert!(edges.contains(&n));
        assert!(edges.iter().any(|k| k.bits() == 233), "top-bit-set");
    }

    #[test]
    fn wire_taxonomy_is_populated() {
        let cfg = DiffConfig {
            seed: 3,
            field_cases: 0,
            scalar_cases: 0,
            wire_cases: 120,
            batch_cases: 0,
            target: m0plus::target::default_target(),
        };
        let report = run(&cfg);
        assert!(report.ok(), "{}", report.render());
        assert!(report.wire_panics == 0);
        // Truncations dominate: BadLength must appear for all three
        // formats; the intact path must also have been exercised.
        assert!(report.wire_taxonomy.keys().any(|k| k.contains("BadLength")));
        assert!(
            report.wire_taxonomy.keys().any(|k| k.contains("Accepted")),
            "{:?}",
            report.wire_taxonomy
        );
    }
}
