//! A greedy byte-level shrinker for differential counterexamples.
//!
//! When a differential case disagrees, the raw input (a field element,
//! a scalar, a wire frame) is serialised to bytes and shrunk against a
//! predicate that re-runs the disagreeing comparison: the result is the
//! smallest input the greedy pass can find that still fails, which is
//! what gets reported. Deterministic; no randomness involved.

/// Greedily shrinks `input` while `fails` stays true.
///
/// Three passes, repeated to a fixed point: (1) delta-debugging style
/// chunk removal (halves, then quarters, …, down to single bytes),
/// (2) zeroing bytes, (3) clearing single bits. The returned vector
/// always satisfies `fails`; if `fails(input)` is false the input is
/// returned unchanged (nothing to shrink).
pub fn shrink_bytes(input: &[u8], fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = input.to_vec();
    if !fails(&cur) {
        return cur;
    }
    loop {
        let mut progressed = false;

        // Pass 1: remove chunks, largest first.
        let mut chunk = (cur.len() / 2).max(1);
        while chunk >= 1 && !cur.is_empty() {
            let mut start = 0;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut candidate = Vec::with_capacity(cur.len() - (end - start));
                candidate.extend_from_slice(&cur[..start]);
                candidate.extend_from_slice(&cur[end..]);
                if fails(&candidate) {
                    cur = candidate;
                    progressed = true;
                    // retry the same start against the shorter input
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: zero bytes.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let saved = cur[i];
            cur[i] = 0;
            if fails(&cur) {
                progressed = true;
            } else {
                cur[i] = saved;
            }
        }

        // Pass 3: clear single bits.
        for i in 0..cur.len() {
            for bit in 0..8 {
                let mask = 1u8 << bit;
                if cur[i] & mask == 0 {
                    continue;
                }
                cur[i] &= !mask;
                if fails(&cur) {
                    progressed = true;
                } else {
                    cur[i] |= mask;
                }
            }
        }

        if !progressed {
            return cur;
        }
    }
}

/// Renders bytes as lowercase hex for reports.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_guilty_byte() {
        let input: Vec<u8> = (0u8..64).collect();
        let out = shrink_bytes(&input, |b| b.contains(&0x2a));
        assert_eq!(out, vec![0x2a]);
    }

    #[test]
    fn shrinks_length_predicates_to_the_boundary() {
        let input = vec![0xffu8; 100];
        let out = shrink_bytes(&input, |b| b.len() >= 10);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&b| b == 0), "bytes also zeroed");
    }

    #[test]
    fn shrinks_bit_level_predicates() {
        let input = vec![0xff, 0xff, 0xff];
        // Fails while byte 1 has its top bit set.
        let out = shrink_bytes(&input, |b| b.iter().any(|&x| x & 0x80 != 0));
        assert_eq!(out, vec![0x80]);
    }

    #[test]
    fn non_failing_input_is_untouched() {
        let input = vec![1, 2, 3];
        assert_eq!(shrink_bytes(&input, |_| false), input);
    }

    #[test]
    fn hex_renders_lowercase() {
        assert_eq!(hex(&[0xde, 0xad, 0x01]), "dead01");
    }
}
