//! Verification subsystem: secret-independence checking and cross-tier
//! differential fuzzing.
//!
//! The paper's whole argument rests on the M0+ cost model — cycles and
//! the Table-3 per-instruction energy figures are what a power attacker
//! observes — so any secret-dependent variation in the instruction,
//! address or cycle trace of a crypto kernel is simultaneously a
//! model-accuracy bug and a simulated SPA leak. This crate provides the
//! two engines that turn that requirement into automated evidence:
//!
//! * [`leakage`] — runs every registered crypto kernel on pairs of
//!   random secret inputs with the [`m0plus`] trace recorder armed and
//!   asserts trace equivalence class-by-class ([`m0plus::TraceClass`]),
//!   reporting the first divergent instruction with its disassembly and
//!   a per-kernel verdict. Kernels with *documented* dependence (the
//!   data-dependent EEA inversion, the wTNAF digit pattern) carry their
//!   justification in the registry and are checked to leak only in the
//!   allowed classes.
//! * [`differential`] — a seeded, deterministic fuzz harness that feeds
//!   identical random field elements, scalars and wire frames through
//!   every execution tier (portable `Fe`, the u64 `GenericField`
//!   oracle, the counted tier, the modeled machine on both the Direct
//!   and Code backends) and cross-checks results, cycle counts between
//!   the two modeled backends, and decoder error taxonomy.
//! * [`shrink`] — a greedy byte-level shrinker used to report a minimal
//!   counterexample when (if) a differential case disagrees.
//!
//! Everything is seeded from the in-tree [`prng`] and contains no
//! wall-clock or randomness source, so two runs with the same
//! configuration produce byte-identical reports — CI runs the smoke
//! campaign twice and diffs the output.

pub mod differential;
pub mod leakage;
pub mod shrink;

pub use differential::{DiffConfig, DiffReport, Disagreement};
pub use leakage::{Cost, Kernel, KernelVerdict, LeakageConfig};
