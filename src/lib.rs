//! Umbrella crate for the reproduction of *"Ultra Low-Power implementation
//! of ECC on the ARM Cortex-M0+"* (De Clercq, Uhsadel, Van Herrewege,
//! Verbauwhede — DAC 2014).
//!
//! This crate re-exports the workspace members so that the examples and
//! integration tests can address the whole system through one dependency:
//!
//! * [`m0plus`] — the Cortex-M0+ instruction-level cost & energy model.
//! * [`gf2m`] — binary-field arithmetic in F₂²³³ (López-Dahab multipliers,
//!   including the paper's *LD with fixed registers*).
//! * [`koblitz`] — the sect233k1 curve layer (points, TNAF, point
//!   multiplication).
//! * [`primefield`] — the prime-curve baseline (secp160r1…secp256r1).
//! * [`protocols`] — ECDH/ECDSA, SHA-256, AES-128 for the WSN scenario.
//! * [`ecc233`] — the public engine API with selectable implementation
//!   profiles and energy reports.
//! * [`wsn`] — the sensor-network lifetime simulation that quantifies
//!   the paper's motivating argument.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ecc233;
pub use gf2m;
pub use koblitz;
pub use m0plus;
pub use primefield;
pub use protocols;
pub use wsn;
