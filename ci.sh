#!/usr/bin/env bash
# The full CI gate, runnable identically locally and in CI.
#
# The workspace has no third-party dependencies, so everything runs
# with --offline: no registry or network access is needed (or allowed —
# an accidental new dependency should fail here).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (offline)"
cargo build --workspace --release --offline

echo "==> cargo test (offline)"
cargo test --workspace --quiet --offline

echo "==> fault campaign smoke (bounded, deterministic)"
target/release/fault_campaign --smoke > /tmp/fault_smoke_1.txt
target/release/fault_campaign --smoke > /tmp/fault_smoke_2.txt
diff /tmp/fault_smoke_1.txt /tmp/fault_smoke_2.txt
grep -q "overall full-profile detection: 100.0%" /tmp/fault_smoke_1.txt

echo "==> fault campaign shard invariance (--shards 1 vs --shards 4)"
target/release/fault_campaign --smoke --shards 1 > /tmp/fault_shard_1.txt
target/release/fault_campaign --smoke --shards 4 > /tmp/fault_shard_4.txt
diff /tmp/fault_shard_1.txt /tmp/fault_shard_4.txt
diff /tmp/fault_smoke_1.txt /tmp/fault_shard_1.txt

echo "==> fault campaign cross-target smoke (--target cortex-m0, deterministic)"
target/release/fault_campaign --smoke --target cortex-m0 > /tmp/fault_m0_1.txt
target/release/fault_campaign --smoke --target cortex-m0 > /tmp/fault_m0_2.txt
diff /tmp/fault_m0_1.txt /tmp/fault_m0_2.txt
grep -q "target cortex-m0 " /tmp/fault_m0_1.txt
# Fault verdicts are target-invariant; only costs may move.
grep -q "overall full-profile detection: 100.0%" /tmp/fault_m0_1.txt

echo "==> verify campaign smoke (leakage + differential, deterministic)"
target/release/verify_campaign --smoke > /tmp/verify_smoke_1.txt
target/release/verify_campaign --smoke > /tmp/verify_smoke_2.txt
diff /tmp/verify_smoke_1.txt /tmp/verify_smoke_2.txt
grep -q "VERDICT: PASS" /tmp/verify_smoke_1.txt
if grep -q -- "-> LEAK" /tmp/verify_smoke_1.txt; then
  echo "unexpected LEAK verdict"
  exit 1
fi
# The bitsliced tier pairs must be present with zero disagreements.
grep -Eq "tier-pair portable/bitsliced +[0-9]+ cases, 0 disagreements" /tmp/verify_smoke_1.txt
grep -Eq "tier-pair counted/bitsliced +[0-9]+ cases, 0 disagreements" /tmp/verify_smoke_1.txt
grep -Eq "tier-pair batch_inv/bitsliced_batch_inv +[0-9]+ cases, 0 disagreements" /tmp/verify_smoke_1.txt

echo "==> verify campaign cross-target smoke (--target cortex-m0, deterministic)"
target/release/verify_campaign --smoke --target cortex-m0 > /tmp/verify_m0_1.txt
target/release/verify_campaign --smoke --target cortex-m0 > /tmp/verify_m0_2.txt
diff /tmp/verify_m0_1.txt /tmp/verify_m0_2.txt
grep -q "VERDICT: PASS" /tmp/verify_m0_1.txt
grep -Eq "tier-pair portable/bitsliced +[0-9]+ cases, 0 disagreements" /tmp/verify_m0_1.txt

echo "==> verify campaign shard invariance (--shards 1 vs --shards 4)"
target/release/verify_campaign --smoke --shards 1 > /tmp/verify_shard_1.txt
target/release/verify_campaign --smoke --shards 4 > /tmp/verify_shard_4.txt
diff /tmp/verify_shard_1.txt /tmp/verify_shard_4.txt
diff /tmp/verify_smoke_1.txt /tmp/verify_shard_1.txt

echo "==> kernel cycle regression gate (vs committed BENCH_*.json)"
target/release/kernel_gate

echo "==> throughput smoke (batch amortisation + executor A/B + shard gates)"
target/release/throughput --smoke > /tmp/throughput_smoke.txt
grep -q "GATE: batch-64 inversion shrink" /tmp/throughput_smoke.txt
grep -q "GATE: predecoded replay bit-identical" /tmp/throughput_smoke.txt
grep -q "GATE: superblock replay bit-identical" /tmp/throughput_smoke.txt
grep -q "GATE: bitsliced values bit-identical" /tmp/throughput_smoke.txt
grep -q "GATE: sharded campaign byte-identical" /tmp/throughput_smoke.txt

echo "==> service plane smoke (gas-metered traffic, deterministic)"
target/release/service --smoke > /tmp/service_smoke_1.txt
target/release/service --smoke > /tmp/service_smoke_2.txt
diff /tmp/service_smoke_1.txt /tmp/service_smoke_2.txt
grep -q "GATE: service accounting balanced" /tmp/service_smoke_1.txt
grep -q "GATE: quotes bit-identical to canonical measurement on cortex-m0plus" /tmp/service_smoke_1.txt

echo "==> service plane cross-target smoke (--target cortex-m0)"
target/release/service --smoke --target cortex-m0 > /tmp/service_m0_1.txt
target/release/service --smoke --target cortex-m0 > /tmp/service_m0_2.txt
diff /tmp/service_m0_1.txt /tmp/service_m0_2.txt
grep -q "GATE: quotes bit-identical to canonical measurement on cortex-m0" /tmp/service_m0_1.txt

echo "==> service plane overload smoke (2x capacity + adversarial frames)"
target/release/service --overload > /tmp/service_overload_1.txt
target/release/service --overload > /tmp/service_overload_2.txt
diff /tmp/service_overload_1.txt /tmp/service_overload_2.txt
grep -q "GATE: service accounting balanced" /tmp/service_overload_1.txt
grep -q "GATE: overload survivable" /tmp/service_overload_1.txt

echo "==> lean build without the trace recorder"
cargo build -p m0plus --release --offline --no-default-features

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> OK"
